#include "core/complete_layered.h"

#include <optional>

#include "core/echo.h"
#include "core/echo_soa.h"
#include "sim/soa_engine.h"

namespace radiocast {

namespace {

constexpr message_kind kAnnounce = 1;    // source's step-0 announcement
constexpr message_kind kPresence = 2;    // L₁ member i replies in step 2i
constexpr message_kind kStopSelect = 3;  // a = v₁'s label
constexpr message_kind kOrder = 4;       // echo order (a=lo, b=hi, c=helper)
constexpr message_kind kReply = 5;       // echo reply
constexpr message_kind kSelect = 6;      // a = next chain head's label
constexpr message_kind kStopLayer = 7;   // b = layer ordered to stop
constexpr message_kind kStopAll = 8;     // terminal stop (k = D reached)

constexpr selection_kinds kKinds{kOrder, kReply};

class cl_node final : public protocol_node {
 public:
  cl_node(node_id label, const protocol_params& params)
      : label_(label), r_(params.r) {
    if (label_ == 0) {
      informed_ = true;
      layer_ = 0;
    }
  }

  std::optional<message> on_step(const node_context& ctx) override {
    std::optional<message> out;
    if (label_ == 0 && ctx.step == 0) {
      awaiting_presence_ = true;
      out = message{kAnnounce, 0, 0, 0, 0, 0};
    } else if (auto due = pending_.take(ctx.step)) {
      out = due;
    } else if (head_ && ctx.step >= drive_start_) {
      out = drive(ctx.step);
    }
    if (out) out->d = layer_;  // every message carries the sender's layer
    return out;
  }

  void on_receive(const node_context& ctx, const message& msg) override {
    if (!informed_) {
      informed_ = true;
      layer_ = static_cast<int>(msg.d) + 1;  // first contact fixes the layer
    }
    switch (msg.kind) {
      case kAnnounce:
        pending_.schedule(ctx.step + 2 * static_cast<std::int64_t>(label_),
                          message{kPresence, label_, 0, 0, 0, 0});
        break;
      case kPresence:
        if (label_ == 0 && awaiting_presence_) {
          awaiting_presence_ = false;
          pending_.schedule(ctx.step + 1,
                            message{kStopSelect, 0, msg.from, 0, 0, 0});
        }
        break;
      case kStopSelect:
        pending_.clear();  // cancel outstanding presence reservations
        if (static_cast<node_id>(msg.a) == label_) {
          become_head(msg.from, ctx.step + 1);
        }
        break;
      case kSelect:
        if (static_cast<node_id>(msg.a) == label_) {
          // Start after the selector's stop-layer step.
          become_head(msg.from, ctx.step + 2);
        }
        break;
      case kOrder:
        if (head_) break;  // a head never answers another head's order
        schedule_echo_replies(
            pending_, kKinds, msg, ctx.step, label_,
            /*is_member=*/layer_ == static_cast<int>(msg.d) + 1);
        break;
      case kReply:
        if (head_ && driver_) driver_->on_receive(msg);
        break;
      case kStopLayer:
        if (layer_ == static_cast<int>(msg.b)) halted_ = true;
        break;
      case kStopAll:
        halted_ = true;
        break;
      default:
        break;
    }
  }

  bool informed() const override { return informed_; }
  bool halted() const override { return halted_; }

  void on_restart(const node_context&) override {
    // Amnesia reboot: re-derive the constructed state (the source knows
    // its layer a priori; everyone else relearns it on first contact).
    informed_ = (label_ == 0);
    layer_ = (label_ == 0) ? 0 : -1;
    halted_ = false;
    head_ = false;
    awaiting_presence_ = false;
    helper_ = -1;
    drive_start_ = 0;
    pending_.clear();
    driver_.reset();
  }

 private:
  void become_head(node_id previous_head, std::int64_t start) {
    head_ = true;
    helper_ = previous_head;
    drive_start_ = start;
    pending_.clear();
    driver_.emplace(kKinds, helper_, r_);
  }

  std::optional<message> drive(std::int64_t step) {
    std::optional<message> out = driver_->on_step(step);
    if (!driver_->finished()) return out;
    head_ = false;
    if (driver_->result() == selection_driver::status::selected) {
      const node_id next = driver_->selected();
      driver_.reset();
      // Select now; order L_{k−1} to stop one step later.
      pending_.schedule(step + 1,
                        message{kStopLayer, label_, 0, layer_ - 1, 0, 0});
      return message{kSelect, label_, next, 0, 0, 0};
    }
    // No next layer: k = D. Stop the neighbors and ourselves.
    driver_.reset();
    halted_ = true;
    return message{kStopAll, label_, 0, 0, 0, 0};
  }

  node_id label_;
  node_id r_;
  bool informed_ = false;
  bool halted_ = false;
  bool head_ = false;
  bool awaiting_presence_ = false;
  int layer_ = -1;
  node_id helper_ = -1;
  std::int64_t drive_start_ = 0;
  pending_tx pending_;
  std::optional<selection_driver> driver_;
};

// SoA mirror of cl_node (sim/soa_engine.h traits). pending_tx and
// selection_driver are replaced by their POD mirrors (core/echo_soa.h);
// every hook must stay behaviorally identical to the virtual node above —
// the three-way differential suite and the chaos engine-bit-identity
// invariant hold the pair together. The chain head's selection driver
// never carries a metrics registry (become_head above never calls
// set_metrics), so every sel_* call passes nullptr.
struct cl_soa_traits {
  node_id r_bound = 1;  // shared config: the label bound r, set by the entry

  struct state {
    node_id label = -1;
    node_id helper = -1;
    std::int32_t layer = -1;
    std::int32_t drive_start = 0;
    soa_pending pending;
    soa_selection sel;
    bool informed = false;
    bool halted = false;
    bool head = false;
    bool awaiting_presence = false;
  };

  void init(state* s, node_id label, const protocol_params&) const {
    *s = state{};
    s->label = label;
    if (label == 0) {
      s->informed = true;
      s->layer = 0;
    }
  }

  std::optional<message> on_step(state* s, const node_context& ctx) const {
    std::optional<message> out;
    if (s->label == 0 && ctx.step == 0) {
      s->awaiting_presence = true;
      out = message{kAnnounce, 0, 0, 0, 0, 0};
    } else if (auto due = take_pending(s, ctx.step)) {
      out = due;
    } else if (s->head && ctx.step >= s->drive_start) {
      out = drive(s, ctx.step);
    }
    if (out) out->d = s->layer;  // every message carries the sender's layer
    return out;
  }

  void on_receive(state* s, const node_context& ctx,
                  const message& msg) const {
    if (!s->informed) {
      s->informed = true;
      s->layer = static_cast<std::int32_t>(msg.d) + 1;
    }
    switch (msg.kind) {
      case kAnnounce:
        s->pending.schedule_structural(
            ctx.step + 2 * static_cast<std::int64_t>(s->label), kPresence);
        break;
      case kPresence:
        if (s->label == 0 && s->awaiting_presence) {
          s->awaiting_presence = false;
          // The virtual node re-reads msg.from only from the scheduled
          // message; the source's helper slot is dead otherwise, so it
          // stashes v₁'s label for the kStopSelect reconstruction.
          s->helper = msg.from;
          s->pending.schedule_structural(ctx.step + 1, kStopSelect);
        }
        break;
      case kStopSelect:
        s->pending.clear();  // cancel outstanding presence reservations
        if (static_cast<node_id>(msg.a) == s->label) {
          become_head(s, msg.from, ctx.step + 1);
        }
        break;
      case kSelect:
        if (static_cast<node_id>(msg.a) == s->label) {
          // Start after the selector's stop-layer step.
          become_head(s, msg.from, ctx.step + 2);
        }
        break;
      case kOrder:
        if (s->head) break;  // a head never answers another head's order
        soa_schedule_echo_replies(
            &s->pending, kKinds, msg, ctx.step, s->label,
            /*is_member=*/s->layer == static_cast<std::int32_t>(msg.d) + 1);
        break;
      case kReply:
        if (s->head) sel_on_receive(&s->sel, kKinds, msg);
        break;
      case kStopLayer:
        if (s->layer == static_cast<std::int32_t>(msg.b)) s->halted = true;
        break;
      case kStopAll:
        s->halted = true;
        break;
      default:
        break;
    }
  }

  bool informed(const state& s) const { return s.informed; }
  bool halted(const state& s) const { return s.halted; }

  void on_restart(state* s, const node_context&) const {
    init(s, s->label, protocol_params{});
  }

 private:
  void become_head(state* s, node_id previous_head, std::int64_t start) const {
    s->head = true;
    s->helper = previous_head;
    s->drive_start = static_cast<std::int32_t>(start);
    s->pending.clear();
    sel_init(&s->sel, r_bound);
  }

  // Mirror of pending_tx::take + the original schedule sites: reconstructs
  // the due message from the structural kind and the node's state.
  std::optional<message> take_pending(state* s, std::int64_t step) const {
    switch (s->pending.take(step)) {
      case 1:
        if (s->pending.one_kind == kPresence) {
          return message{kPresence, s->label, 0, 0, 0, 0};
        }
        if (s->pending.one_kind == kStopSelect) {
          return message{kStopSelect, 0, s->helper, 0, 0, 0};
        }
        // kStopLayer: b = the layer below this head, fixed on first
        // contact and immutable until an (queue-clearing) restart.
        return message{kStopLayer, s->label, 0, s->layer - 1, 0, 0};
      case 2:
        return message{kReply, s->label, 0, 0, 0, 0};
      default:
        return std::nullopt;
    }
  }

  std::optional<message> drive(state* s, std::int64_t step) const {
    std::optional<message> out =
        sel_on_step(&s->sel, kKinds, s->helper, r_bound, nullptr);
    if (!sel_finished(s->sel)) return out;
    s->head = false;
    if (sel_selected(s->sel)) {
      const node_id next = s->sel.heard1;
      // Select now; order L_{k−1} to stop one step later.
      s->pending.schedule_structural(step + 1, kStopLayer);
      return message{kSelect, s->label, next, 0, 0, 0};
    }
    // No next layer: k = D. Stop the neighbors and ourselves.
    s->halted = true;
    return message{kStopAll, s->label, 0, 0, 0, 0};
  }
};

run_result cl_soa_entry(const graph& g, const protocol&, node_id r,
                        const run_options& opts) {
  cl_soa_traits traits;
  traits.r_bound = r;
  return run_broadcast_soa(g, traits, r, opts);
}

}  // namespace

std::unique_ptr<protocol_node> complete_layered_protocol::make_node(
    node_id label, const protocol_params& params) const {
  return std::make_unique<cl_node>(label, params);
}

soa_entry complete_layered_protocol::soa_runner() const {
  return &cl_soa_entry;
}

}  // namespace radiocast
