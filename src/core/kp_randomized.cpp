#include "core/kp_randomized.h"

#include <cmath>
#include <vector>

#include "core/decay.h"
#include "obs/metrics.h"
#include "sim/soa_engine.h"
#include "util/assert.h"
#include "util/math.h"

namespace radiocast {

namespace {
constexpr message_kind kKpPayload = 1;
}  // namespace

/// One Randomized-Broadcasting(D) block of the (possibly doubling) schedule.
struct kp_block {
  int log_d = 0;
  std::int64_t start = 0;     ///< global offset of the block
  std::int64_t length = 0;    ///< 1 (source step) + stages·stage_len
  int stage_len = 0;          ///< log(r/D)+1 geometric steps (+1 unless
                              ///< ablated)
  int geometric_steps = 0;    ///< log(r/D)+1
  universal_sequence seq;
};

struct kp_randomized_protocol::schedule {
  int log_r = 0;
  std::int64_t total_length = 0;
  std::vector<kp_block> blocks;

  /// Locates the block containing schedule offset `pos` (0 ≤ pos < total).
  const kp_block& block_at(std::int64_t pos) const {
    RC_CHECK(pos >= 0 && pos < total_length);
    // Few blocks (≤ log r); linear scan.
    for (const kp_block& b : blocks) {
      if (pos < b.start + b.length) return b;
    }
    RC_CHECK(false);
    return blocks.back();  // unreachable
  }
};

namespace {

kp_block make_block(int log_r, int log_d, std::int64_t stage_budget,
                    bool ablate, std::int64_t start) {
  RC_CHECK(log_d >= 0 && log_d <= log_r);
  kp_block b{log_d, start, 0, 0, 0, universal_sequence(log_r, log_d)};
  b.geometric_steps = (log_r - log_d) + 1;
  b.stage_len = b.geometric_steps + (ablate ? 0 : 1);
  const std::int64_t stages = stage_budget << log_d;  // budget · D
  b.length = 1 + stages * b.stage_len;
  return b;
}

class kp_node final : public protocol_node {
 public:
  kp_node(node_id label,
          std::shared_ptr<const kp_randomized_protocol::schedule> sched)
      : label_(label), sched_(std::move(sched)), informed_(label == 0) {}

  std::optional<message> on_step(const node_context& ctx) override {
    if (!informed_) return std::nullopt;
    const std::int64_t pos = ctx.step % sched_->total_length;
    const kp_block& block = sched_->block_at(pos);
    const std::int64_t in_block = pos - block.start;
    if (in_block == 0) {
      // "the source transmits" — the first step of each block.
      if (label_ == 0) {
        if (ctx.metrics != nullptr) {
          ctx.metrics->get_counter("kp.tx", "source_step").add();
        }
        return payload();
      }
      return std::nullopt;
    }
    const std::int64_t stage_index = (in_block - 1) / block.stage_len;
    const std::int64_t within = (in_block - 1) % block.stage_len;
    // A node performs Stage(D, i) iff it received the source message before
    // the stage began (paper: a node informed during stage i first
    // transmits in stage i+1).
    const std::int64_t stage_start_step = ctx.step - within;
    if (informed_step_ >= stage_start_step) return std::nullopt;
    const bool universal_step = within >= block.geometric_steps;
    double p = 0.0;
    if (!universal_step) {
      p = std::ldexp(1.0, -static_cast<int>(within));  // 1/2ˡ
    } else {
      p = block.seq.probability_at(stage_index + 1);  // p_i, 1-based
    }
    if (ctx.gen->bernoulli(p)) {
      if (ctx.metrics != nullptr) {
        // Phase markers: which doubling block (log D guess) is live, how
        // deep into its stage schedule we are, and whether the transmit
        // came from the geometric cascade or the Lemma 1 universal step.
        ctx.metrics->get_gauge("kp.block_log_d").set(block.log_d);
        ctx.metrics->get_gauge("kp.stage").set(stage_index);
        ctx.metrics->get_counter(
                        "kp.tx", universal_step ? "universal" : "geometric")
            .add();
      }
      return payload();
    }
    return std::nullopt;
  }

  void on_receive(const node_context& ctx, const message&) override {
    if (!informed_) {
      informed_ = true;
      informed_step_ = ctx.step;
    }
  }

  bool informed() const override { return informed_; }

  void on_restart(const node_context&) override {
    // Amnesia reboot: sched_ is shared immutable configuration; only the
    // informed flag and its timestamp are volatile.
    informed_ = (label_ == 0);
    informed_step_ = -1;
  }

 private:
  message payload() const { return message{kKpPayload, label_, 0, 0, 0}; }

  node_id label_;
  std::shared_ptr<const kp_randomized_protocol::schedule> sched_;
  bool informed_;
  std::int64_t informed_step_ = -1;  // the source knows it from the start
};

// SoA mirror of kp_node (sim/soa_engine.h traits): the immutable schedule
// stays shared configuration on the traits object; only the informed flag
// and its timestamp are per-node state. Behavior must match kp_node bit for
// bit — same bernoulli draws in the same order.
struct kp_soa_traits {
  std::shared_ptr<const kp_randomized_protocol::schedule> sched;

  // Per-step cache (begin_step hoist): the schedule position — block
  // lookup, stage index, step-within-stage, transmit probability — is a
  // pure function of the step number, identical for every node. on_step
  // only reads these, keeping the sharded phase-1 region race-free.
  const kp_block* block = nullptr;
  std::int64_t in_block = 0;
  std::int64_t stage_index = 0;
  std::int64_t stage_start_step = 0;
  bool universal_step = false;
  double p = 0.0;

  struct state {
    node_id label = 0;
    std::int64_t informed_step = -1;
    bool informed = false;
  };

  void init(state* s, node_id label, const protocol_params&) const {
    s->label = label;
    s->informed = (label == 0);
    s->informed_step = -1;
  }

  void begin_step(std::int64_t step) {
    const std::int64_t pos = step % sched->total_length;
    block = &sched->block_at(pos);
    in_block = pos - block->start;
    if (in_block == 0) return;  // source step: nothing below is read
    stage_index = (in_block - 1) / block->stage_len;
    const std::int64_t within = (in_block - 1) % block->stage_len;
    stage_start_step = step - within;
    universal_step = within >= block->geometric_steps;
    if (!universal_step) {
      p = std::ldexp(1.0, -static_cast<int>(within));  // 1/2ˡ
    } else {
      p = block->seq.probability_at(stage_index + 1);  // p_i, 1-based
    }
  }

  std::optional<message> on_step(state* s, const node_context& ctx) const {
    if (!s->informed) return std::nullopt;
    if (in_block == 0) {
      // "the source transmits" — the first step of each block.
      if (s->label == 0) {
        if (ctx.metrics != nullptr) {
          ctx.metrics->get_counter("kp.tx", "source_step").add();
        }
        return payload(s);
      }
      return std::nullopt;
    }
    // A node performs Stage(D, i) iff it received the source message before
    // the stage began (paper: a node informed during stage i first
    // transmits in stage i+1).
    if (s->informed_step >= stage_start_step) return std::nullopt;
    if (ctx.gen->bernoulli(p)) {
      if (ctx.metrics != nullptr) {
        ctx.metrics->get_gauge("kp.block_log_d").set(block->log_d);
        ctx.metrics->get_gauge("kp.stage").set(stage_index);
        ctx.metrics->get_counter(
                        "kp.tx", universal_step ? "universal" : "geometric")
            .add();
      }
      return payload(s);
    }
    return std::nullopt;
  }

  void on_receive(state* s, const node_context& ctx, const message&) const {
    if (!s->informed) {
      s->informed = true;
      s->informed_step = ctx.step;
    }
  }

  bool informed(const state& s) const { return s.informed; }
  bool halted(const state&) const { return false; }

  void on_restart(state* s, const node_context&) const {
    s->informed = (s->label == 0);
    s->informed_step = -1;
  }

 private:
  static message payload(const state* s) {
    return message{kKpPayload, s->label, 0, 0, 0};
  }
};

}  // namespace

kp_randomized_protocol::kp_randomized_protocol(node_id r, kp_options options)
    : r_(r), options_(options) {
  RC_REQUIRE(r >= 1);
  RC_REQUIRE(options.stage_budget >= 1);
  const int log_r = ilog2_ceil(static_cast<std::uint64_t>(r));
  RC_REQUIRE(log_r >= 1);

  if (options_.known_d > 0 && options_.paper_bgi_threshold) {
    const double threshold =
        32.0 * std::pow(static_cast<double>(r), 2.0 / 3.0);
    if (static_cast<double>(options_.known_d) <= threshold) {
      use_bgi_fallback_ = true;
      return;
    }
  }

  auto sched = std::make_shared<schedule>();
  sched->log_r = log_r;
  if (options_.known_d > 0) {
    const int log_d =
        std::min(log_r, ilog2_ceil(static_cast<std::uint64_t>(
                            options_.known_d)));
    sched->blocks.push_back(make_block(log_r, log_d, options_.stage_budget,
                                       options_.ablate_universal_step, 0));
  } else {
    std::int64_t start = 0;
    for (int i = 1; i <= log_r; ++i) {
      sched->blocks.push_back(make_block(log_r, i, options_.stage_budget,
                                         options_.ablate_universal_step,
                                         start));
      start += sched->blocks.back().length;
    }
  }
  sched->total_length =
      sched->blocks.back().start + sched->blocks.back().length;
  schedule_ = std::move(sched);
}

kp_randomized_protocol::~kp_randomized_protocol() = default;

std::string kp_randomized_protocol::name() const {
  if (use_bgi_fallback_) return "kp-optimal(bgi-fallback)";
  std::string n = options_.known_d > 0 ? "kp-randomized(D=" +
                                             std::to_string(options_.known_d) +
                                             ")"
                                       : "kp-optimal(doubling)";
  if (options_.ablate_universal_step) n += "[ablated]";
  return n;
}

std::int64_t kp_randomized_protocol::schedule_period() const {
  if (use_bgi_fallback_) return 0;
  return schedule_->total_length;
}

std::unique_ptr<protocol_node> kp_randomized_protocol::make_node(
    node_id label, const protocol_params& params) const {
  RC_REQUIRE_MSG(params.r <= r_,
                 "kp_randomized_protocol was built for a smaller label bound");
  if (use_bgi_fallback_) {
    return decay_protocol().make_node(label, params);
  }
  return std::make_unique<kp_node>(label, schedule_);
}

run_result kp_randomized_protocol::soa_entry_fn(const graph& g,
                                                const protocol& proto,
                                                node_id r,
                                                const run_options& opts) {
  const auto& kp = static_cast<const kp_randomized_protocol&>(proto);
  RC_REQUIRE_MSG(r <= kp.r_,
                 "kp_randomized_protocol was built for a smaller label bound");
  RC_CHECK(!kp.use_bgi_fallback_);  // the fallback routes to Decay's entry
  kp_soa_traits traits;
  traits.sched = kp.schedule_;
  return run_broadcast_soa(g, traits, r, opts);
}

soa_entry kp_randomized_protocol::soa_runner() const {
  // Mirror make_node: the BGI-fallback regime runs Decay, so its SoA form
  // is Decay's too.
  if (use_bgi_fallback_) return decay_protocol().soa_runner();
  return &kp_randomized_protocol::soa_entry_fn;
}

}  // namespace radiocast
