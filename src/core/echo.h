// Procedure Echo and Algorithm Binary-Selection (paper, Section 4.1).
//
// Echo(w, A) lets a node v that knows one neighbor w ∉ A distinguish
// |A| ∈ {0, 1, ≥2} in two steps — simulating collision detection, which the
// radio model does not provide:
//   step 1: every node in A transmits its label;
//   step 2: every node in A ∪ {w} transmits its label.
// v hears step 1 only ⇒ |A| = 1 (and learns the unique label);
// v hears step 2 only ⇒ |A| = 0; v hears neither ⇒ |A| ≥ 2.
//
// Binary-Selection finds one element of a nonempty set S of neighbors in
// O(log m) three-step segments (order, echo-1, echo-2), descending ranges:
// on |R ∩ S| = 0 move to the next half-size segment, on ≥ 2 take the left
// half, on = 1 select.
//
// `selection_driver` implements the initiator side of the full pipeline the
// deterministic algorithms use: a whole-set probe, then doubling probes over
// [1, 2ᵏ], then Binary-Selection. The responder side (scheduling the two
// echo replies upon receiving an order) is shared via `pending_tx` and
// `schedule_echo_replies`.
#pragma once

#include <optional>
#include <vector>

#include "sim/message.h"
#include "util/assert.h"

namespace radiocast::obs {
class metrics_registry;
}  // namespace radiocast::obs

namespace radiocast {

/// Message kinds the selection subprotocol uses, chosen by the owning
/// protocol so kind spaces never collide.
/// Order message layout: a = range lo, b = range hi, c = helper label.
/// Reply message layout: the transmitter's label rides in `from`.
struct selection_kinds {
  message_kind order = 0;
  message_kind reply = 0;
};

/// A tiny future-transmission queue (horizon ≤ 2 steps for echoes; the
/// source-announcement schedule uses longer horizons).
class pending_tx {
 public:
  void schedule(std::int64_t step, message msg) {
    entries_.push_back({step, msg});
  }

  /// The message scheduled for `step`, removing it; nullopt if none.
  std::optional<message> take(std::int64_t step) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].step == step) {
        message msg = entries_[i].msg;
        entries_[i] = entries_.back();
        entries_.pop_back();
        return msg;
      }
    }
    return std::nullopt;
  }

  void clear() { entries_.clear(); }
  bool empty() const { return entries_.empty(); }

 private:
  struct entry {
    std::int64_t step;
    message msg;
  };
  std::vector<entry> entries_;
};

/// Responder-side helper: given an order received at `step` by a node with
/// label `self`, schedules the Echo replies it owes.
/// * A member of the probed set A (the caller decides membership) replies in
///   both echo steps (A transmits in step 1, A ∪ {w} in step 2).
/// * The helper w replies in the second echo step only.
void schedule_echo_replies(pending_tx& out, const selection_kinds& kinds,
                           const message& order, std::int64_t step,
                           node_id self, bool is_member);

/// Initiator-side state machine: probes the responder set S (whose members
/// are this node's neighbors) and either selects exactly one of them or
/// reports S = ∅. Deterministic, O(log label_bound) echo segments.
class selection_driver {
 public:
  enum class status { running, empty_set, selected };

  /// helper = the known neighbor w used in every Echo call;
  /// label_bound = the r the node knows (responder labels are ≤ r).
  selection_driver(selection_kinds kinds, node_id helper,
                   node_id label_bound);

  /// Advances one step. Returns the order to transmit, or nullopt when
  /// listening (or when just finished — check result()).
  std::optional<message> on_step(std::int64_t step);

  /// Feed every message the owning node receives while the driver runs.
  void on_receive(const message& msg);

  status result() const { return status_; }
  bool finished() const { return status_ != status::running; }

  /// The selected responder label; only valid when status == selected.
  node_id selected() const {
    RC_REQUIRE(status_ == status::selected);
    return selected_;
  }

  /// Number of three-step echo segments issued so far (for complexity
  /// tests: O(log label_bound) per selection).
  int segments_issued() const { return segments_; }

  /// Times the driver observed a reply pattern that is impossible on a
  /// reliable channel (both echo steps heard, a non-helper lone step-2
  /// reply, or a range walk past the label bound) and restarted the probe
  /// from scratch. Always 0 in the fault-free model; under fault injection
  /// (src/fault/) dropped replies can produce such patterns, and
  /// restarting keeps the selection correct at the price of extra
  /// segments. Note the asymmetry that makes this safe: faults only erase
  /// deliveries, so a heard reply is always genuine — errors can only bias
  /// an echo toward the "≥2" outcome, never toward a false "unique" or
  /// false "empty".
  int recoveries() const { return recoveries_; }

  /// Optional phase markers: counts issued segments per selection phase
  /// under `echo.segments{full_probe|doubling|binary}`. Null (default)
  /// disables instrumentation; the owning protocol forwards the registry
  /// it received through node_context.
  void set_metrics(obs::metrics_registry* metrics) { metrics_ = metrics; }

 private:
  enum class phase { full_probe, doubling, binary };
  enum class substep { send_order, listen1, listen2, evaluate };
  enum class echo_outcome { empty, unique, multi };

  void advance(echo_outcome outcome);
  void note_segment();  ///< bumps segments_ and the phase-labeled counter
  void recover();       ///< restart from the full probe after a fault

  selection_kinds kinds_;
  node_id helper_;
  node_id bound_;
  obs::metrics_registry* metrics_ = nullptr;

  status status_ = status::running;
  phase phase_ = phase::full_probe;
  substep sub_ = substep::send_order;
  int doubling_k_ = 0;
  node_id lo_ = 0, hi_ = 0;  // current probe range
  std::optional<node_id> heard1_, heard2_;
  node_id selected_ = -1;
  int segments_ = 0;
  int recoveries_ = 0;
};

}  // namespace radiocast
