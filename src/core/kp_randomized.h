// The paper's optimal randomized broadcasting algorithm (Section 2).
//
// Procedure Stage(D, i) — one stage of log(r/D)+2 steps:
//     for l = 0 … log(r/D): transmit with probability 1/2ˡ
//     transmit with probability p_i            (universal sequence value)
//
// Procedure Randomized-Broadcasting(D):
//     the source transmits, then stages i = 1 … 4660·D are run; a node
//     participates in stage i iff it received the source message before
//     stage i began.
//
// Algorithm Optimal-Randomized-Broadcasting removes the knowledge of D by
// doubling: Randomized-Broadcasting(2ⁱ) for i = 1 … log r, repeated forever
// (Corollary 1 iterates the algorithm).
//
// Expected broadcast time O(D log(n/D) + log² n) — optimal by the lower
// bounds of Alon et al. and Kushilevitz–Mansour. The analysis (and our
// simulator) also covers directed networks of directed radius D.
//
// Practical notes, recorded in DESIGN.md:
//   * the constant 4660 comes from the high-probability analysis; runs stop
//     at completion, and `stage_budget` makes the constant configurable;
//   * the paper falls back to BGI's procedure when D ≤ 32·r^(2/3) — a
//     regime that covers ALL laptop-scale instances, again because the
//     constant 32 is an analysis artifact. `paper_bgi_threshold` enables
//     the verbatim rule; experiments exercise the stage machinery directly;
//   * `ablate_universal_step` drops the p_i step (experiment E8): the
//     remaining truncated-decay stages stall on nodes with many more than
//     r/D informed in-neighbors, which is exactly why the paper adds it.
#pragma once

#include <memory>

#include "core/universal_sequence.h"
#include "sim/protocol.h"

namespace radiocast {

struct kp_options {
  /// If > 0: run Randomized-Broadcasting(D) with this D (rounded up to a
  /// power of two). If ≤ 0: the doubling wrapper over D = 2, 4, …, r.
  int known_d = -1;

  /// Stages per unit of D in each Randomized-Broadcasting(D) block
  /// (the paper's constant is 4660).
  std::int64_t stage_budget = 4660;

  /// Apply the paper's verbatim fallback to BGI Decay when
  /// known_d ≤ 32·r^(2/3). Only meaningful with known_d > 0.
  bool paper_bgi_threshold = false;

  /// Drop the universal-sequence step from every stage (ablation).
  bool ablate_universal_step = false;
};

class kp_randomized_protocol final : public protocol {
 public:
  /// `r` is the label bound the nodes know (the schedule depends on it and
  /// is shared across nodes, so it is fixed at construction).
  explicit kp_randomized_protocol(node_id r, kp_options options = {});
  ~kp_randomized_protocol() override;

  std::string name() const override;
  bool deterministic() const override { return false; }
  std::unique_ptr<protocol_node> make_node(
      node_id label, const protocol_params& params) const override;
  /// Struct-of-arrays step form (step_engine::soa). In the BGI-fallback
  /// regime this returns Decay's entry, mirroring make_node exactly.
  soa_entry soa_runner() const override;

  /// Total schedule period (the wrapper repeats with this period).
  std::int64_t schedule_period() const;

  struct schedule;  ///< implementation detail, public for the node type

 private:
  static run_result soa_entry_fn(const graph& g, const protocol& proto,
                                 node_id r, const run_options& opts);

  node_id r_;
  kp_options options_;
  std::shared_ptr<const schedule> schedule_;
  bool use_bgi_fallback_ = false;
};

}  // namespace radiocast
