// Algorithm Complete-Layered (paper, Section 4.3, Theorem 4).
//
// Deterministic O(n + D log n) broadcasting on undirected complete layered
// networks — the algorithm that refutes the claimed Ω(n log D) lower bound
// of Clementi–Monti–Silvestri for the undirected case.
//
// Phase 1 selects v₁ = the lowest-labeled neighbor of the source by
// reserving time slot 2i for label i (O(n) steps, paid once). Each later
// phase k+1 is O(log n): the chain head v_k wakes layer L_{k+1} (its first
// echo order doubles as the wake), runs Echo(v_{k−1}, L_{k+1}) plus
// Binary-Selection to pick v_{k+1}, hands leadership over, and orders layer
// L_{k−1} to stop. When the probe finds no new layer (k = D), the head
// orders its neighbors to stop and the algorithm terminates.
//
// Every informed node knows its layer number: each message carries its
// sender's layer (message::d) and a node joins layer d+1 on first contact.
// Membership in a phase's echo set is decided by layer number, which makes
// the algorithm robust to nodes of L_{k+1} being informed slightly early by
// overheard echo replies from L_k.
//
// PRECONDITION: the network must be complete layered (is_complete_layered);
// on other topologies the layer-number bookkeeping is meaningless.
#pragma once

#include "sim/protocol.h"

namespace radiocast {

class complete_layered_protocol final : public protocol {
 public:
  complete_layered_protocol() = default;

  std::string name() const override { return "complete-layered"; }
  bool deterministic() const override { return true; }
  std::unique_ptr<protocol_node> make_node(
      node_id label, const protocol_params& params) const override;
  /// Struct-of-arrays step form (step_engine::soa): POD per-node state,
  /// decisions and metrics writes bit-identical to the virtual node.
  soa_entry soa_runner() const override;
};

}  // namespace radiocast
