// Selective-family broadcasting (the machinery of Clementi–Monti–Silvestri
// [10], which the paper's Theorem 2 lower-bounds against).
//
// Fix an (r+1, k)-selective family F = {F_0, …, F_{|F|−1}} over the label
// space. In step t every informed node v transmits iff v ∈ F_{t mod |F|}.
// Whenever an uninformed node u has a nonempty set X of informed
// in-neighbors with |X| ≤ k, some set of the family intersects X in exactly
// one node within one pass, so u is informed after at most |F| further
// steps once its informed in-neighborhood stabilizes: broadcast completes
// in O(D·|F|) on networks of max in-degree < k.
//
// This protocol exists for two reasons: it is a natural deterministic
// baseline on bounded-degree networks, and it makes the connection between
// the paper's lower-bound combinatorics and an actual algorithm concrete —
// the same objects that jam the adversary's layers, run forwards, broadcast.
//
// The family is built by the residue-class construction
// (modular_selective_family) with enough primes for the requested k;
// constructors verify selectivity exhaustively when the label space is
// small enough and otherwise rely on the construction's pair-separation
// argument (two labels collide mod q for at most log_q(r) primes).
#pragma once

#include <memory>
#include <vector>

#include "adversary/selective_family.h"
#include "sim/protocol.h"

namespace radiocast {

class selective_broadcast_protocol final : public protocol {
 public:
  /// `r` is the label bound; `k` must exceed the maximum in-degree of any
  /// node in the target network (k ≥ Δ+1 guarantees selection).
  selective_broadcast_protocol(node_id r, int k);

  std::string name() const override;
  bool deterministic() const override { return true; }
  std::unique_ptr<protocol_node> make_node(
      node_id label, const protocol_params& params) const override;

  /// Length of one pass over the family.
  std::int64_t family_size() const;

  /// The underlying family (for tests).
  const set_family& family() const { return *family_; }

 private:
  node_id r_;
  int k_;
  std::shared_ptr<const set_family> family_;
};

}  // namespace radiocast
