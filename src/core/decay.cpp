#include "core/decay.h"

#include "obs/metrics.h"
#include "util/math.h"

namespace radiocast {

namespace {

constexpr message_kind kDecayPayload = 1;

class decay_node final : public protocol_node {
 public:
  decay_node(node_id label, const protocol_params& params)
      : label_(label),
        phase_len_(2 * std::max(1, ilog2_ceil(
                           static_cast<std::uint64_t>(params.r) + 1))),
        informed_(label == 0) {}

  std::optional<message> on_step(const node_context& ctx) override {
    if (!informed_) return std::nullopt;
    const std::int64_t phase = ctx.step / phase_len_;
    const std::int64_t offset = ctx.step % phase_len_;
    if (informed_step_ >= phase * phase_len_) {
      return std::nullopt;  // informed mid-phase; joins the next phase
    }
    if (phase != drawn_phase_) {
      // Draw this phase's geometric cutoff: transmit in steps 0..cutoff−1.
      drawn_phase_ = phase;
      cutoff_ = 1;
      while (cutoff_ < phase_len_ && ctx.gen->flip()) ++cutoff_;
      if (ctx.metrics != nullptr) {
        // Phase markers: which decay phase is live, and the distribution
        // of drawn cutoffs (geometric, mean ≈ 2).
        ctx.metrics->get_gauge("decay.phase").set(phase);
        ctx.metrics->get_histogram("decay.cutoff").observe(cutoff_);
      }
    }
    if (offset < cutoff_) {
      if (ctx.metrics != nullptr) {
        // Stage index within the phase: stage k transmits with effective
        // probability 2⁻ᵏ across the informed population.
        ctx.metrics->get_counter("decay.stage_tx", std::to_string(offset))
            .add();
      }
      return message{kDecayPayload, label_, 0, 0, 0};
    }
    return std::nullopt;
  }

  void on_receive(const node_context& ctx, const message&) override {
    if (!informed_) {
      informed_ = true;
      informed_step_ = ctx.step;
    }
  }

  bool informed() const override { return informed_; }

  void on_restart(const node_context&) override {
    // Amnesia reboot: back to the constructed state (label_ and phase_len_
    // are configuration; everything else is volatile).
    informed_ = (label_ == 0);
    informed_step_ = -1;
    drawn_phase_ = -1;
    cutoff_ = 0;
  }

 private:
  node_id label_;
  std::int64_t phase_len_;
  bool informed_;
  std::int64_t informed_step_ = -1;  // source: before step 0
  std::int64_t drawn_phase_ = -1;
  std::int64_t cutoff_ = 0;
};

}  // namespace

std::unique_ptr<protocol_node> decay_protocol::make_node(
    node_id label, const protocol_params& params) const {
  return std::make_unique<decay_node>(label, params);
}

}  // namespace radiocast
