#include "core/decay.h"

#include <algorithm>

#include "obs/metrics.h"
#include "sim/soa_engine.h"
#include "util/math.h"

namespace radiocast {

namespace {

constexpr message_kind kDecayPayload = 1;

class decay_node final : public protocol_node {
 public:
  decay_node(node_id label, const protocol_params& params)
      : label_(label),
        phase_len_(2 * std::max(1, ilog2_ceil(
                           static_cast<std::uint64_t>(params.r) + 1))),
        informed_(label == 0) {}

  std::optional<message> on_step(const node_context& ctx) override {
    if (!informed_) return std::nullopt;
    const std::int64_t phase = ctx.step / phase_len_;
    const std::int64_t offset = ctx.step % phase_len_;
    if (informed_step_ >= phase * phase_len_) {
      return std::nullopt;  // informed mid-phase; joins the next phase
    }
    if (phase != drawn_phase_) {
      // Draw this phase's geometric cutoff: transmit in steps 0..cutoff−1.
      drawn_phase_ = phase;
      cutoff_ = 1;
      while (cutoff_ < phase_len_ && ctx.gen->flip()) ++cutoff_;
      if (ctx.metrics != nullptr) {
        // Phase markers: which decay phase is live, and the distribution
        // of drawn cutoffs (geometric, mean ≈ 2).
        ctx.metrics->get_gauge("decay.phase").set(phase);
        ctx.metrics->get_histogram("decay.cutoff").observe(cutoff_);
      }
    }
    if (offset < cutoff_) {
      if (ctx.metrics != nullptr) {
        // Stage index within the phase: stage k transmits with effective
        // probability 2⁻ᵏ across the informed population.
        ctx.metrics->get_counter("decay.stage_tx", std::to_string(offset))
            .add();
      }
      return message{kDecayPayload, label_, 0, 0, 0};
    }
    return std::nullopt;
  }

  void on_receive(const node_context& ctx, const message&) override {
    if (!informed_) {
      informed_ = true;
      informed_step_ = ctx.step;
    }
  }

  bool informed() const override { return informed_; }

  void on_restart(const node_context&) override {
    // Amnesia reboot: back to the constructed state (label_ and phase_len_
    // are configuration; everything else is volatile).
    informed_ = (label_ == 0);
    informed_step_ = -1;
    drawn_phase_ = -1;
    cutoff_ = 0;
  }

 private:
  node_id label_;
  std::int64_t phase_len_;
  bool informed_;
  std::int64_t informed_step_ = -1;  // source: before step 0
  std::int64_t drawn_phase_ = -1;
  std::int64_t cutoff_ = 0;
};

// SoA mirror of decay_node (sim/soa_engine.h traits). Every hook must stay
// behaviorally identical to the virtual node above — same decisions, same
// ctx.gen draw sequence, same metrics writes — the three-way differential
// suite and the chaos engine-bit-identity invariant hold the pair together.
struct decay_soa_traits {
  std::int64_t phase_len = 1;  // shared config: 2⌈log(r+1)⌉, set by the entry

  // Per-step cache (begin_step hoist): the phase arithmetic is a pure
  // function of the step number, identical for every node, so it is
  // computed once per step instead of once per awake node. on_step only
  // reads these, keeping the sharded phase-1 region race-free.
  std::int64_t step_phase = 0;
  std::int64_t step_offset = 0;
  std::int64_t phase_start = 0;

  struct state {
    node_id label = 0;
    std::int64_t informed_step = -1;
    std::int64_t drawn_phase = -1;
    std::int64_t cutoff = 0;
    bool informed = false;
  };

  void begin_step(std::int64_t step) {
    step_phase = step / phase_len;
    step_offset = step % phase_len;
    phase_start = step_phase * phase_len;
  }

  void init(state* s, node_id label, const protocol_params&) const {
    s->label = label;
    s->informed = (label == 0);
    s->informed_step = -1;
    s->drawn_phase = -1;
    s->cutoff = 0;
  }

  std::optional<message> on_step(state* s, const node_context& ctx) const {
    if (!s->informed) return std::nullopt;
    if (s->informed_step >= phase_start) {
      return std::nullopt;  // informed mid-phase; joins the next phase
    }
    if (step_phase != s->drawn_phase) {
      // Draw this phase's geometric cutoff: transmit in steps 0..cutoff−1.
      s->drawn_phase = step_phase;
      s->cutoff = 1;
      while (s->cutoff < phase_len && ctx.gen->flip()) ++s->cutoff;
      if (ctx.metrics != nullptr) {
        ctx.metrics->get_gauge("decay.phase").set(step_phase);
        ctx.metrics->get_histogram("decay.cutoff").observe(s->cutoff);
      }
    }
    if (step_offset < s->cutoff) {
      if (ctx.metrics != nullptr) {
        ctx.metrics->get_counter("decay.stage_tx",
                                 std::to_string(step_offset))
            .add();
      }
      return message{kDecayPayload, s->label, 0, 0, 0};
    }
    return std::nullopt;
  }

  void on_receive(state* s, const node_context& ctx, const message&) const {
    if (!s->informed) {
      s->informed = true;
      s->informed_step = ctx.step;
    }
  }

  bool informed(const state& s) const { return s.informed; }
  bool halted(const state&) const { return false; }

  void on_restart(state* s, const node_context&) const {
    s->informed = (s->label == 0);
    s->informed_step = -1;
    s->drawn_phase = -1;
    s->cutoff = 0;
  }
};

run_result decay_soa_entry(const graph& g, const protocol&, node_id r,
                           const run_options& opts) {
  decay_soa_traits traits;
  traits.phase_len =
      2 * std::max(1, ilog2_ceil(static_cast<std::uint64_t>(r) + 1));
  return run_broadcast_soa(g, traits, r, opts);
}

}  // namespace

std::unique_ptr<protocol_node> decay_protocol::make_node(
    node_id label, const protocol_params& params) const {
  return std::make_unique<decay_node>(label, params);
}

soa_entry decay_protocol::soa_runner() const { return &decay_soa_entry; }

}  // namespace radiocast
