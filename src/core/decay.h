// Bar-Yehuda–Goldreich–Itai randomized broadcasting (the paper's baseline).
//
// Procedure Decay: an informed node transmits in consecutive steps, quitting
// after each transmission with probability 1/2 (and unconditionally after
// 2⌈log(r+1)⌉ steps). Broadcast schedules Decay in synchronized phases of
// length 2⌈log(r+1)⌉: at each phase start, every node informed before the
// phase draws its geometric cutoff and participates.
//
// Expected broadcast time O(D log n + log² n) — the bound the paper's
// optimal algorithm improves to O(D log(n/D) + log² n).
#pragma once

#include "sim/protocol.h"

namespace radiocast {

class decay_protocol final : public protocol {
 public:
  decay_protocol() = default;

  std::string name() const override { return "bgi-decay"; }
  bool deterministic() const override { return false; }
  std::unique_ptr<protocol_node> make_node(
      node_id label, const protocol_params& params) const override;
  /// Struct-of-arrays step form (step_engine::soa): POD per-node state,
  /// decisions and RNG draws bit-identical to the virtual node.
  soa_entry soa_runner() const override;
};

}  // namespace radiocast
