#include "core/dfs_known.h"

#include <algorithm>
#include <vector>

#include "util/assert.h"

namespace radiocast {

namespace {

constexpr message_kind kAnnounce = 1;  // "I have just been visited"
constexpr message_kind kToken = 2;     // a = receiving node's label

class dfs_known_node final : public protocol_node {
 public:
  dfs_known_node(node_id label, std::vector<node_id> neighbors)
      : label_(label), neighbors_(std::move(neighbors)),
        informed_(label == 0) {
    std::sort(neighbors_.begin(), neighbors_.end());
    unvisited_.assign(neighbors_.size(), true);
    if (label_ == 0) visited_ = true;
  }

  std::optional<message> on_step(const node_context& ctx) override {
    if (label_ == 0 && ctx.step == 0) {
      // The source opens with its announcement and becomes the holder.
      holder_ = true;
      act_at_ = 1;
      return message{kAnnounce, 0, 0, 0, 0, 0};
    }
    if (pending_announce_ == ctx.step) {
      pending_announce_ = -1;
      holder_ = true;
      act_at_ = ctx.step + 1;
      return message{kAnnounce, label_, 0, 0, 0, 0};
    }
    if (holder_ && act_at_ == ctx.step) {
      holder_ = false;
      const node_id next = lowest_unvisited();
      if (next >= 0) {
        return message{kToken, label_, next, 0, 0, 0};
      }
      halted_ = true;
      if (label_ == 0) return std::nullopt;  // traversal complete
      return message{kToken, label_, parent_, 0, 0, 0};
    }
    return std::nullopt;
  }

  void on_receive(const node_context& ctx, const message& msg) override {
    informed_ = true;
    switch (msg.kind) {
      case kAnnounce:
        mark_visited(msg.from);
        break;
      case kToken:
        mark_visited(msg.from);  // the sender necessarily was visited
        if (static_cast<node_id>(msg.a) != label_) break;
        if (!visited_) {
          visited_ = true;
          parent_ = msg.from;
          pending_announce_ = ctx.step + 1;  // announce, then act
        } else {
          holder_ = true;  // a child returned the token
          act_at_ = ctx.step + 1;
        }
        break;
      default:
        break;
    }
  }

  bool informed() const override { return informed_; }
  bool halted() const override { return halted_; }

  void on_restart(const node_context&) override {
    // Amnesia reboot: neighbors_ is configuration (known topology); the
    // visitation record and token state are volatile.
    informed_ = visited_ = (label_ == 0);
    unvisited_.assign(neighbors_.size(), true);
    holder_ = false;
    halted_ = false;
    parent_ = -1;
    pending_announce_ = -1;
    act_at_ = -1;
  }

 private:
  void mark_visited(node_id who) {
    const auto it =
        std::lower_bound(neighbors_.begin(), neighbors_.end(), who);
    if (it != neighbors_.end() && *it == who) {
      unvisited_[static_cast<std::size_t>(it - neighbors_.begin())] = false;
    }
  }

  node_id lowest_unvisited() const {
    for (std::size_t i = 0; i < neighbors_.size(); ++i) {
      if (unvisited_[i]) return neighbors_[i];
    }
    return -1;
  }

  node_id label_;
  std::vector<node_id> neighbors_;
  std::vector<bool> unvisited_;
  bool informed_;
  bool visited_ = false;
  bool holder_ = false;
  bool halted_ = false;
  node_id parent_ = -1;
  std::int64_t pending_announce_ = -1;
  std::int64_t act_at_ = -1;
};

}  // namespace

dfs_known_protocol::dfs_known_protocol(const graph& g) : g_(g) {
  RC_REQUIRE_MSG(!g.is_directed(),
                 "the DFS baseline runs on undirected networks");
}

std::unique_ptr<protocol_node> dfs_known_protocol::make_node(
    node_id label, const protocol_params&) const {
  const auto nbrs = g_.out_neighbors(label);
  return std::make_unique<dfs_known_node>(
      label, std::vector<node_id>(nbrs.begin(), nbrs.end()));
}

}  // namespace radiocast
