#include "core/universal_sequence.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.h"
#include "util/math.h"

namespace radiocast {

universal_sequence::universal_sequence(int log_r, int log_d)
    : log_r_(log_r), log_d_(log_d) {
  RC_REQUIRE(log_r >= 1);
  RC_REQUIRE(log_d >= 0 && log_d <= log_r);

  log_log_r_ = ilog2_ceil(static_cast<std::uint64_t>(log_r));

  const std::int64_t r = std::int64_t{1} << log_r;

  // J = ⌊log(r / (4 log r))⌋; empty U1 tail when r ≤ 4 log r (tiny r).
  const std::int64_t four_log_r = 4 * static_cast<std::int64_t>(log_r);
  const int j_split =
      r > four_log_r
          ? ilog2_floor(static_cast<std::uint64_t>(r / four_log_r))
          : log_r;

  u1_lo_ = (log_r - log_d) + 1;   // log(r/D) + 1
  u1_hi_ = std::min(j_split, log_r);
  u2_lo_ = std::max(j_split + 1, u1_lo_);
  u2_hi_ = log_r;

  // --- Lemma 1 construction over a complete binary tree of depth log D ---
  const std::int64_t leaves = std::int64_t{1} << log_d;

  // reals_at_level[ℓ] = exponents j attached to EVERY node of level ℓ.
  std::vector<std::vector<int>> reals_at_level(
      static_cast<std::size_t>(log_d) + 1);
  auto attach = [&](int j, int level) {
    level = std::clamp(level, 0, log_d);  // clamp outside the valid regime
    reals_at_level[static_cast<std::size_t>(level)].push_back(j);
  };
  for (int j = u1_lo_; j <= u1_hi_; ++j) {
    attach(j, log_r + 1 - j);  // level log(2r / 2ʲ)
  }
  for (int j = u2_lo_; j <= u2_hi_; ++j) {
    attach(j, log_r + log_log_r_ + 2 - j);  // level log(2r·2^(L+1) / 2ʲ)
  }

  // Leaf sequences; reals attached directly at leaf level stay in place.
  std::vector<std::vector<int>> leaf_seq(static_cast<std::size_t>(leaves));
  for (int j : reals_at_level[static_cast<std::size_t>(log_d)]) {
    for (std::int64_t leaf = 0; leaf < leaves; ++leaf) {
      leaf_seq[static_cast<std::size_t>(leaf)].push_back(j);
    }
  }

  // Push reals from internal levels down to leaves, bottom-up; each real
  // goes to the leftmost least-loaded leaf of its node's subtree ("the
  // leftmost leaf which has fewer reals than leaves to the left of it").
  // Within a node, move smaller reals (larger exponents) first.
  for (int level = log_d - 1; level >= 0; --level) {
    auto values = reals_at_level[static_cast<std::size_t>(level)];
    // smaller real 1/2ʲ ⇔ larger j
    std::sort(values.begin(), values.end(), std::greater<>());
    const std::int64_t node_count = std::int64_t{1} << level;
    const std::int64_t subtree = leaves >> level;  // leaves per node
    for (std::int64_t node = 0; node < node_count; ++node) {
      const std::int64_t lo = node * subtree;
      for (int j : values) {
        std::int64_t target = lo;
        std::size_t best =
            leaf_seq[static_cast<std::size_t>(lo)].size();
        for (std::int64_t leaf = lo + 1; leaf < lo + subtree; ++leaf) {
          const std::size_t load =
              leaf_seq[static_cast<std::size_t>(leaf)].size();
          if (load < best) {
            best = load;
            target = leaf;
          }
        }
        leaf_seq[static_cast<std::size_t>(target)].push_back(j);
      }
    }
  }

  for (std::int64_t leaf = 0; leaf < leaves; ++leaf) {
    const auto& seq = leaf_seq[static_cast<std::size_t>(leaf)];
    exponents_.insert(exponents_.end(), seq.begin(), seq.end());
  }
  if (exponents_.empty()) {
    // Degenerate parameters (e.g. D = 1): fall back to the smallest
    // probability; Stage's geometric steps already cover this regime.
    exponents_.push_back(log_r);
  }
}

int universal_sequence::exponent_at(std::int64_t i) const {
  RC_REQUIRE(i >= 1);
  const auto idx = static_cast<std::size_t>((i - 1) % period());
  return exponents_[idx];
}

double universal_sequence::probability_at(std::int64_t i) const {
  return std::ldexp(1.0, -exponent_at(i));
}

std::int64_t universal_sequence::u1_gap_bound(int j) const {
  RC_REQUIRE(j >= 0 && j <= 62);
  // 3·D·2ʲ / r = 3·2^(log_d + j − log_r); ≥ 1 in the U1 range.
  const int shift = log_d_ + j - log_r_;
  RC_REQUIRE(shift >= 0);
  return 3 * (std::int64_t{1} << shift);
}

std::int64_t universal_sequence::u2_gap_bound(int j) const {
  RC_REQUIRE(j >= 0 && j <= 62);
  const int shift = log_d_ + j - log_r_ - (log_log_r_ + 1);
  if (shift < 0) return 1;
  return std::max<std::int64_t>(1, 3 * (std::int64_t{1} << shift));
}

std::int64_t universal_sequence::max_cyclic_gap(int j) const {
  std::vector<std::int64_t> positions;
  for (std::int64_t i = 0; i < period(); ++i) {
    if (exponents_[static_cast<std::size_t>(i)] == j) positions.push_back(i);
  }
  if (positions.empty()) return period() + 1;
  std::int64_t max_gap = 0;
  for (std::size_t k = 0; k + 1 < positions.size(); ++k) {
    max_gap = std::max(max_gap, positions[k + 1] - positions[k]);
  }
  // wrap-around gap
  max_gap = std::max(max_gap,
                     positions.front() + period() - positions.back());
  return max_gap;
}

}  // namespace radiocast
