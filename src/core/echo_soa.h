// POD mirrors of the echo subprotocol state (core/echo.h) for the SoA step
// engine (sim/soa_engine.h): a compact future-transmission window replacing
// pending_tx, and a flat selection_driver replacing the heap-held state
// machine. Every function here must stay BEHAVIORALLY IDENTICAL to its
// virtual counterpart — same emissions, same metrics writes — the three-way
// differential suite and the chaos engine-bit-identity invariant hold the
// pairs together.
//
// WHY THE COMPACT PENDING QUEUE IS SAFE (pending_tx holds arbitrary
// entries; soa_pending holds one structural slot + an 8-bit reply window):
//
//   * Structural entries (presence reservations, stop/token notices,
//     stop-layer orders) are provably exclusive: a node schedules its
//     presence reply at most once per run (there is exactly one source
//     announcement), the source's stop notice is guarded by
//     awaiting_presence, and a head's stop-layer order is scheduled only
//     after become_head cleared the queue — so at most ONE structural
//     entry is ever live, and it always precedes any reply entry in the
//     virtual queue's insertion order (replies need a prior echo order).
//     take()'s structural-first tie-break therefore matches pending_tx's
//     scan-first-exact-match order.
//   * Echo replies from one node are CONTENT-IDENTICAL ({reply_kind,
//     self}), so a step's reply only needs a presence bit, not a payload.
//     The radio model delivers at most one order per step, so replies land
//     at most 2 steps ahead — the 8-bit window never overflows — and
//     duplicate same-step replies collapse into one bit, exactly matching
//     pending_tx, where take() fires the first match once and strands the
//     duplicate forever.
//   * Stale entries (a reservation whose step passed while the node was
//     crashed, or a reply shadowed by a same-step structural entry) never
//     fire in pending_tx — take() demands exact step equality. soa_pending
//     purges them instead of carrying them; the emissions are identical.
//
// Step fields are 32-bit to fit the engine's 64-byte state budget: the
// furthest schedule is step + 2·label + 2, so runs stay exact through
// step ≈ 2³¹ − 2·r — far past every configured max_steps.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>

#include "core/echo.h"
#include "obs/metrics.h"
#include "sim/message.h"
#include "util/assert.h"

namespace radiocast {

/// Future-transmission window (12 bytes): one structural entry (kind +
/// step) plus an 8-bit reply window anchored at reply_base (bit k set ⇔ a
/// reply is owed at step reply_base + k).
struct soa_pending {
  std::int32_t one_step = -1;    ///< structural entry's step; −1 = none
  std::int32_t reply_base = 0;   ///< step of reply bit 0
  std::uint8_t reply_mask = 0;   ///< bit k ⇒ reply owed at reply_base + k
  std::int8_t one_kind = 0;      ///< structural entry's message_kind

  void clear() {
    one_step = -1;
    reply_mask = 0;
  }

  /// Schedules the (unique — see header comment) structural entry.
  void schedule_structural(std::int64_t step, message_kind kind) {
    RC_CHECK_MSG(one_step == -1 || one_step < static_cast<std::int32_t>(step),
                 "soa_pending: overlapping structural schedules");
    one_step = static_cast<std::int32_t>(step);
    one_kind = static_cast<std::int8_t>(kind);
  }

  /// Schedules an echo reply for `step` (≤ 2 steps ahead).
  void schedule_reply(std::int64_t step) {
    const auto s = static_cast<std::int32_t>(step);
    if (reply_mask == 0) {
      reply_base = s;
      reply_mask = 1;
      return;
    }
    if (s < reply_base) {
      const std::int32_t shift = reply_base - s;
      RC_CHECK(shift < 8);
      reply_mask = static_cast<std::uint8_t>(reply_mask << shift);
      reply_base = s;
      reply_mask |= 1;
      return;
    }
    const std::int32_t bit = s - reply_base;
    RC_CHECK_MSG(bit < 8, "soa_pending: reply scheduled past the window");
    reply_mask |= static_cast<std::uint8_t>(std::uint8_t{1} << bit);
  }

  /// What fires at `step`: 0 = nothing, 1 = the structural entry (caller
  /// reconstructs the message from one_kind + its own state), 2 = a reply.
  /// Purges entries whose step has passed (they can never fire — exactly
  /// pending_tx's exact-step-match semantics).
  int take(std::int64_t step) {
    const auto s = static_cast<std::int32_t>(step);
    if (reply_mask != 0 && reply_base < s) {
      const std::int32_t shift = s - reply_base;
      reply_mask = shift >= 8
                       ? std::uint8_t{0}
                       : static_cast<std::uint8_t>(reply_mask >> shift);
      reply_base = s;
    }
    if (one_step != -1 && one_step < s) one_step = -1;
    if (one_step == s) {
      one_step = -1;
      return 1;
    }
    if (reply_mask != 0 && reply_base == s && (reply_mask & 1) != 0) {
      reply_mask = static_cast<std::uint8_t>(reply_mask & ~std::uint8_t{1});
      return 2;
    }
    return 0;
  }
};

/// Responder-side mirror of schedule_echo_replies (core/echo.cpp): same
/// membership decision, replies recorded as window bits.
inline void soa_schedule_echo_replies(soa_pending* out,
                                      const selection_kinds& kinds,
                                      const message& order, std::int64_t step,
                                      node_id self, bool is_member) {
  RC_REQUIRE(order.kind == kinds.order);
  const auto lo = static_cast<node_id>(order.a);
  const auto hi = static_cast<node_id>(order.b);
  const auto helper = static_cast<node_id>(order.c);
  if (is_member && self >= lo && self <= hi) {
    out->schedule_reply(step + 1);
    out->schedule_reply(step + 2);
  } else if (self == helper) {
    out->schedule_reply(step + 2);
  }
}

/// Flat selection_driver state (24 bytes). The selected responder label is
/// heard1 once status == selected (the driver copies *heard1_ into
/// selected_; here they are the same slot). recoveries are not counted in
/// state — only the metrics side effect exists, emitted at recover time.
struct soa_selection {
  node_id lo = 0, hi = 0;
  node_id heard1 = -1, heard2 = -1;  ///< −1 mirrors an empty optional
  std::int32_t segments = 0;
  std::uint8_t status = 0;      ///< 0 running, 1 empty_set, 2 selected
  std::uint8_t phase = 0;       ///< 0 full_probe, 1 doubling, 2 binary
  std::uint8_t sub = 0;         ///< 0 send_order, 1 listen1, 2 listen2,
                                ///< 3 evaluate
  std::uint8_t doubling_k = 0;
};

namespace soa_echo_detail {

inline constexpr std::uint8_t kRunning = 0, kEmptySet = 1, kSelected = 2;
inline constexpr std::uint8_t kFullProbe = 0, kDoubling = 1, kBinary = 2;
inline constexpr std::uint8_t kSendOrder = 0, kListen1 = 1, kListen2 = 2,
                              kEvaluate = 3;
inline constexpr int kOutcomeEmpty = 0, kOutcomeUnique = 1, kOutcomeMulti = 2;

inline void sel_recover(soa_selection* s, node_id bound,
                        obs::metrics_registry* metrics) {
  if (metrics != nullptr) {
    metrics->get_counter("echo.recoveries").add();
  }
  s->phase = kFullProbe;
  s->doubling_k = 0;
  s->lo = 0;
  s->hi = bound;
}

inline void sel_note_segment(soa_selection* s,
                             obs::metrics_registry* metrics) {
  ++s->segments;
  if (metrics != nullptr) {
    const char* tag = s->phase == kFullProbe ? "full_probe"
                      : s->phase == kDoubling ? "doubling"
                                              : "binary";
    metrics->get_counter("echo.segments", tag).add();
  }
}

// Mirror of selection_driver::advance — every branch, in order.
inline void sel_advance(soa_selection* s, int outcome, node_id bound,
                        obs::metrics_registry* metrics) {
  switch (s->phase) {
    case kFullProbe:
      switch (outcome) {
        case kOutcomeEmpty:
          s->status = kEmptySet;
          return;
        case kOutcomeUnique:
          s->status = kSelected;  // selected label = heard1
          return;
        default:
          s->phase = kDoubling;
          s->doubling_k = 1;
          s->lo = 1;
          s->hi = 2;
          return;
      }
    case kDoubling:
      switch (outcome) {
        case kOutcomeEmpty: {
          ++s->doubling_k;
          if ((std::int64_t{1} << (s->doubling_k - 1)) > bound) {
            sel_recover(s, bound, metrics);
            return;
          }
          s->lo = 1;
          s->hi = static_cast<node_id>(
              std::min<std::int64_t>(std::int64_t{1} << s->doubling_k,
                                     static_cast<std::int64_t>(bound)));
          return;
        }
        case kOutcomeUnique:
          s->status = kSelected;
          return;
        default: {
          const std::int64_t m = std::int64_t{1} << s->doubling_k;
          s->phase = kBinary;
          s->lo = 1;
          s->hi = static_cast<node_id>(std::max<std::int64_t>(1, m / 2));
          return;
        }
      }
    default:
      switch (outcome) {
        case kOutcomeUnique:
          s->status = kSelected;
          return;
        case kOutcomeEmpty: {
          const node_id size = s->hi - s->lo + 1;
          const node_id next = std::max<node_id>(1, size / 2);
          s->lo = s->hi + 1;
          s->hi = s->hi + next;
          if (s->lo > bound + 1) sel_recover(s, bound, metrics);
          return;
        }
        default: {
          const node_id size = s->hi - s->lo + 1;
          if (size < 2) {
            sel_recover(s, bound, metrics);
            return;
          }
          s->hi = s->lo + size / 2 - 1;
          return;
        }
      }
  }
}

}  // namespace soa_echo_detail

/// Mirror of the selection_driver constructor.
inline void sel_init(soa_selection* s, node_id bound) {
  RC_REQUIRE(bound >= 1);
  *s = soa_selection{};
  s->lo = 0;
  s->hi = bound;
}

/// Mirror of selection_driver::on_step.
inline std::optional<message> sel_on_step(soa_selection* s,
                                          const selection_kinds& kinds,
                                          node_id helper, node_id bound,
                                          obs::metrics_registry* metrics) {
  using namespace soa_echo_detail;
  RC_REQUIRE(s->status == kRunning);
  switch (s->sub) {
    case kSendOrder:
      s->heard1 = -1;
      s->heard2 = -1;
      s->sub = kListen1;
      sel_note_segment(s, metrics);
      return message{kinds.order, -1, s->lo, s->hi, helper};
    case kListen1:
      s->sub = kListen2;
      return std::nullopt;
    case kListen2:
      s->sub = kEvaluate;
      return std::nullopt;
    default: {
      // Impossible-reply patterns restart the probe; see the virtual
      // driver for the reliability argument.
      if (s->heard1 != -1 && s->heard2 == -1) {
        sel_advance(s, kOutcomeUnique, bound, metrics);
      } else if (s->heard1 == -1 && s->heard2 != -1 && s->heard2 == helper) {
        sel_advance(s, kOutcomeEmpty, bound, metrics);
      } else if (s->heard1 == -1 && s->heard2 == -1) {
        sel_advance(s, kOutcomeMulti, bound, metrics);
      } else {
        sel_recover(s, bound, metrics);
      }
      if (s->status != kRunning) return std::nullopt;
      // Immediately issue the next order in this same step.
      s->heard1 = -1;
      s->heard2 = -1;
      s->sub = kListen1;
      sel_note_segment(s, metrics);
      return message{kinds.order, -1, s->lo, s->hi, helper};
    }
  }
}

/// Mirror of selection_driver::on_receive.
inline void sel_on_receive(soa_selection* s, const selection_kinds& kinds,
                           const message& msg) {
  using namespace soa_echo_detail;
  if (msg.kind != kinds.reply) return;
  if (s->sub == kListen2) {
    s->heard1 = msg.from;
  } else if (s->sub == kEvaluate) {
    s->heard2 = msg.from;
  }
}

/// True once the selection is no longer running.
inline bool sel_finished(const soa_selection& s) {
  return s.status != soa_echo_detail::kRunning;
}

inline bool sel_selected(const soa_selection& s) {
  return s.status == soa_echo_detail::kSelected;
}

}  // namespace radiocast
