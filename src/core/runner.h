// Convenience layer tying protocols, graphs and measurements together.
//
// The examples and benchmarks construct protocols by name and measure
// completion-time statistics over seeded trial batches through this header.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "sim/protocol.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace radiocast {

/// Builds a protocol by name. Supported names:
///   "decay"            — BGI randomized baseline
///   "kp"               — Randomized-Broadcasting(D); requires known_d > 0
///   "kp-doubling"      — Optimal-Randomized-Broadcasting (doubling over D)
///   "kp-ablated"       — "kp" without the universal-sequence step
///   "round-robin"      — deterministic O(nD)
///   "select-and-send"  — deterministic O(n log n)
///   "complete-layered" — deterministic O(n + D log n) (layered nets only)
///   "interleaved"      — deterministic O(n·min(D, log n))
///   "selective"        — selective-family broadcast; known_d is reused as
///                        the degree bound k (must exceed the max in-degree)
/// `r` is the label bound (usually n−1); `known_d` feeds D-parameterized
/// procedures and is ignored by the rest. The known-neighborhood DFS
/// baseline (core/dfs_known.h) is constructed directly from a graph and is
/// therefore not in this registry.
std::unique_ptr<protocol> make_protocol(const std::string& name, node_id r,
                                        int known_d = -1);

/// All names make_protocol accepts.
std::vector<std::string> protocol_names();

/// Measurement of one (graph, protocol) pair over seeded trials.
struct measurement {
  std::string protocol_name;
  summary time;  ///< completion (all-informed) steps across trials
};

/// Runs `trials` seeded broadcasts and summarizes completion times.
/// Deterministic protocols are still run `trials` times only if
/// `collapse_deterministic` is false (their time cannot vary).
measurement measure(const graph& g, const protocol& proto, int trials,
                    std::uint64_t base_seed = 1,
                    std::int64_t max_steps = 1'000'000,
                    bool collapse_deterministic = true);

}  // namespace radiocast
