#include "core/echo.h"

#include "obs/metrics.h"
#include "util/math.h"

namespace radiocast {

void schedule_echo_replies(pending_tx& out, const selection_kinds& kinds,
                           const message& order, std::int64_t step,
                           node_id self, bool is_member) {
  RC_REQUIRE(order.kind == kinds.order);
  const auto lo = static_cast<node_id>(order.a);
  const auto hi = static_cast<node_id>(order.b);
  const auto helper = static_cast<node_id>(order.c);
  const message reply{kinds.reply, self, 0, 0, 0};
  if (is_member && self >= lo && self <= hi) {
    out.schedule(step + 1, reply);
    out.schedule(step + 2, reply);
  } else if (self == helper) {
    out.schedule(step + 2, reply);
  }
}

selection_driver::selection_driver(selection_kinds kinds, node_id helper,
                                   node_id label_bound)
    : kinds_(kinds), helper_(helper), bound_(label_bound) {
  RC_REQUIRE(label_bound >= 1);
  // Full probe: the whole label space (labels of S members are in [1, r];
  // 0 is the source, which is never an unselected responder).
  lo_ = 0;
  hi_ = bound_;
}

std::optional<message> selection_driver::on_step(std::int64_t) {
  RC_REQUIRE(status_ == status::running);
  switch (sub_) {
    case substep::send_order: {
      heard1_.reset();
      heard2_.reset();
      sub_ = substep::listen1;
      note_segment();
      return message{kinds_.order, -1, lo_, hi_, helper_};
    }
    case substep::listen1:
      sub_ = substep::listen2;
      return std::nullopt;
    case substep::listen2:
      sub_ = substep::evaluate;
      return std::nullopt;
    case substep::evaluate: {
      // Reply patterns impossible on a reliable channel — both steps
      // heard (a member crashed between its two replies), or a lone
      // step-2 reply from a non-helper (the member's step-1 reply was
      // dropped) — mean the channel is faulty; restart the probe rather
      // than trust any inference drawn from it. Faults only erase
      // deliveries, so every heard reply is genuine: drops can bias an
      // echo toward "multi" (extra descending work) but never fabricate
      // a "unique" or "empty" outcome.
      std::optional<echo_outcome> outcome;
      if (heard1_ && !heard2_) {
        outcome = echo_outcome::unique;
      } else if (!heard1_ && heard2_ && *heard2_ == helper_) {
        outcome = echo_outcome::empty;
      } else if (!heard1_ && !heard2_) {
        outcome = echo_outcome::multi;
      }
      if (outcome) {
        advance(*outcome);
      } else {
        recover();
      }
      if (status_ != status::running) return std::nullopt;
      // Immediately issue the next order in this same step.
      heard1_.reset();
      heard2_.reset();
      sub_ = substep::listen1;
      note_segment();
      return message{kinds_.order, -1, lo_, hi_, helper_};
    }
  }
  RC_CHECK(false);
  return std::nullopt;
}

void selection_driver::recover() {
  ++recoveries_;
  if (metrics_ != nullptr) {
    metrics_->get_counter("echo.recoveries").add();
  }
  phase_ = phase::full_probe;
  doubling_k_ = 0;
  lo_ = 0;
  hi_ = bound_;
}

void selection_driver::note_segment() {
  ++segments_;
  if (metrics_ != nullptr) {
    const char* tag = phase_ == phase::full_probe ? "full_probe"
                      : phase_ == phase::doubling ? "doubling"
                                                  : "binary";
    metrics_->get_counter("echo.segments", tag).add();
  }
}

void selection_driver::on_receive(const message& msg) {
  if (msg.kind != kinds_.reply) return;  // not part of this subprotocol
  if (sub_ == substep::listen2) {
    // We are listening for echo step 1 (the transition to listen2 happens
    // when on_step(listen1) runs, i.e. during the first echo step).
    heard1_ = msg.from;
  } else if (sub_ == substep::evaluate) {
    heard2_ = msg.from;
  }
}

void selection_driver::advance(echo_outcome outcome) {
  switch (phase_) {
    case phase::full_probe:
      switch (outcome) {
        case echo_outcome::empty:
          status_ = status::empty_set;
          return;
        case echo_outcome::unique:
          status_ = status::selected;
          selected_ = *heard1_;
          return;
        case echo_outcome::multi:
          phase_ = phase::doubling;
          doubling_k_ = 1;
          lo_ = 1;
          hi_ = 2;
          return;
      }
      break;
    case phase::doubling:
      switch (outcome) {
        case echo_outcome::empty: {
          ++doubling_k_;
          if ((std::int64_t{1} << (doubling_k_ - 1)) > bound_) {
            // Doubling ran past the label bound with a nonempty S:
            // impossible reliably, a dropped-reply artifact under faults.
            recover();
            return;
          }
          lo_ = 1;
          hi_ = static_cast<node_id>(
              std::min<std::int64_t>(std::int64_t{1} << doubling_k_,
                                     static_cast<std::int64_t>(bound_)));
          return;
        }
        case echo_outcome::unique:
          status_ = status::selected;
          selected_ = *heard1_;
          return;
        case echo_outcome::multi: {
          // Binary-Selection over [1, m], m = 2ᵏ: first range {1, …, m/2}.
          const std::int64_t m = std::int64_t{1} << doubling_k_;
          phase_ = phase::binary;
          lo_ = 1;
          hi_ = static_cast<node_id>(std::max<std::int64_t>(1, m / 2));
          return;
        }
      }
      break;
    case phase::binary:
      switch (outcome) {
        case echo_outcome::unique:
          status_ = status::selected;
          selected_ = *heard1_;
          return;
        case echo_outcome::empty: {
          // R = {x,…,y} empty of S: next segment {y+1, …, y+⌈size/2⌉…};
          // the paper halves the segment size each move (floor at 1).
          const node_id size = hi_ - lo_ + 1;
          const node_id next = std::max<node_id>(1, size / 2);
          lo_ = hi_ + 1;
          hi_ = hi_ + next;
          if (lo_ > bound_ + 1) recover();  // walked past the label bound
          return;
        }
        case echo_outcome::multi: {
          // ≥ 2 elements in R: descend into the left half. "≥2 in a
          // single-label range" is impossible reliably — recover.
          const node_id size = hi_ - lo_ + 1;
          if (size < 2) {
            recover();
            return;
          }
          hi_ = lo_ + size / 2 - 1;
          return;
        }
      }
      break;
  }
  RC_CHECK(false);
}

}  // namespace radiocast
