#include "core/runner.h"

#include "core/complete_layered.h"
#include "core/decay.h"
#include "core/interleaved.h"
#include "core/kp_randomized.h"
#include "core/round_robin.h"
#include "core/select_and_send.h"
#include "core/selective_broadcast.h"
#include "util/assert.h"

namespace radiocast {

std::unique_ptr<protocol> make_protocol(const std::string& name, node_id r,
                                        int known_d) {
  if (name == "decay") return std::make_unique<decay_protocol>();
  if (name == "kp") {
    RC_REQUIRE_MSG(known_d > 0, "protocol 'kp' needs known_d > 0");
    kp_options opts;
    opts.known_d = known_d;
    return std::make_unique<kp_randomized_protocol>(r, opts);
  }
  if (name == "kp-doubling") {
    return std::make_unique<kp_randomized_protocol>(r, kp_options{});
  }
  if (name == "kp-ablated") {
    RC_REQUIRE_MSG(known_d > 0, "protocol 'kp-ablated' needs known_d > 0");
    kp_options opts;
    opts.known_d = known_d;
    opts.ablate_universal_step = true;
    return std::make_unique<kp_randomized_protocol>(r, opts);
  }
  if (name == "round-robin") return std::make_unique<round_robin_protocol>();
  if (name == "select-and-send") {
    return std::make_unique<select_and_send_protocol>();
  }
  if (name == "complete-layered") {
    return std::make_unique<complete_layered_protocol>();
  }
  if (name == "interleaved") return std::make_unique<interleaved_protocol>();
  if (name == "selective") {
    RC_REQUIRE_MSG(known_d > 0,
                   "protocol 'selective' needs known_d = a bound exceeding "
                   "the maximum in-degree");
    return std::make_unique<selective_broadcast_protocol>(r, known_d);
  }
  RC_REQUIRE_MSG(false, "unknown protocol name '" + name + "'");
  return nullptr;  // unreachable
}

std::vector<std::string> protocol_names() {
  return {"decay",       "kp",
          "kp-doubling", "kp-ablated",
          "round-robin", "select-and-send",
          "complete-layered", "interleaved",
          "selective"};
}

measurement measure(const graph& g, const protocol& proto, int trials,
                    std::uint64_t base_seed, std::int64_t max_steps,
                    bool collapse_deterministic) {
  if (proto.deterministic() && collapse_deterministic) trials = 1;
  const std::vector<double> times =
      completion_times(g, proto, trials, base_seed, max_steps);
  return measurement{proto.name(), summarize(times)};
}

}  // namespace radiocast
