#include "core/selective_broadcast.h"

#include <algorithm>

#include "util/assert.h"
#include "util/math.h"

namespace radiocast {

namespace {

constexpr message_kind kSelectivePayload = 1;

class selective_node final : public protocol_node {
 public:
  selective_node(node_id label, std::shared_ptr<const set_family> family)
      : label_(label), family_(std::move(family)), informed_(label == 0) {
    // Precompute this node's transmission slots within one pass.
    for (std::size_t i = 0; i < family_->size(); ++i) {
      const auto& set = (*family_)[i];
      if (std::binary_search(set.begin(), set.end(),
                             static_cast<int>(label_))) {
        slots_.push_back(i);
      }
    }
  }

  std::optional<message> on_step(const node_context& ctx) override {
    if (!informed_) return std::nullopt;
    const auto pos = static_cast<std::size_t>(
        ctx.step % static_cast<std::int64_t>(family_->size()));
    if (std::binary_search(slots_.begin(), slots_.end(), pos)) {
      return message{kSelectivePayload, label_, 0, 0, 0, 0};
    }
    return std::nullopt;
  }

  void on_receive(const node_context&, const message&) override {
    informed_ = true;
  }

  bool informed() const override { return informed_; }

  void on_restart(const node_context&) override {
    informed_ = (label_ == 0);  // family_/slots_ are configuration
  }

 private:
  node_id label_;
  std::shared_ptr<const set_family> family_;
  bool informed_;
  std::vector<std::size_t> slots_;
};

}  // namespace

selective_broadcast_protocol::selective_broadcast_protocol(node_id r, int k)
    : r_(r), k_(k) {
  RC_REQUIRE(r >= 1);
  RC_REQUIRE(k >= 1);
  // Pair-separation: two labels ≤ r collide modulo at most log₂(r)/log₂(q)
  // primes q; with k·⌈log₂(r+1)⌉ + 1 primes ≥ k, every |X| ≤ k has a prime
  // separating one element from the rest.
  const int primes = k * std::max(1, ilog2_ceil(
                             static_cast<std::uint64_t>(r) + 1)) + 1;
  auto family = std::make_shared<set_family>(
      modular_selective_family(static_cast<int>(r) + 1, k, primes));
  for (auto& set : *family) std::sort(set.begin(), set.end());
  family_ = std::move(family);
}

std::string selective_broadcast_protocol::name() const {
  return "selective-family(k=" + std::to_string(k_) + ")";
}

std::int64_t selective_broadcast_protocol::family_size() const {
  return static_cast<std::int64_t>(family_->size());
}

std::unique_ptr<protocol_node> selective_broadcast_protocol::make_node(
    node_id label, const protocol_params& params) const {
  RC_REQUIRE_MSG(params.r <= r_,
                 "protocol built for a smaller label bound than the run's");
  return std::make_unique<selective_node>(label, family_);
}

}  // namespace radiocast
