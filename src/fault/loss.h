// Probabilistic message loss.
//
// Each would-be successful reception (exactly one transmitting neighbor)
// is independently dropped with probability `drop_probability`; the
// listener hears silence. Collisions are already silence, so loss composes
// cleanly with the paper's model: it strictly thins the set of deliveries
// and never forges observations.
//
// Loss is per (listener, step) DELIVERY, not per transmission: a single
// transmission heard by k listeners is subjected to k independent drops —
// the standard independent-erasure channel of the unreliable-radio
// literature.
#pragma once

#include "fault/fault_model.h"

namespace radiocast::fault {

struct loss_options {
  /// Probability, in [0, 1], that any single delivery is suppressed.
  double drop_probability = 0.0;
};

class loss_model final : public fault_model {
 public:
  explicit loss_model(loss_options opts);

  std::string name() const override { return "loss"; }
  void begin_run(const run_view& view) override;
  void filter_deliveries(
      const step_view& view,
      std::vector<delivery_candidate>* candidates) override;

  /// Deliveries this model has suppressed in the current run.
  std::int64_t dropped_count() const { return dropped_count_; }

  std::unique_ptr<fault_model> clone() const override {
    return std::make_unique<loss_model>(opts_);
  }

 private:
  loss_options opts_;
  rng gen_{0};
  std::int64_t dropped_count_ = 0;
};

}  // namespace radiocast::fault
