// Chaos harness: seed-driven invariant fuzzing over fault models,
// protocols, and graph families.
//
// The fault subsystem's correctness story rests on contracts — exactly-one
// -transmitter delivery, no spontaneous transmissions, faults only ever
// ERASE deliveries, frontier/reference bit-identity, zero-intensity models
// are perfect no-ops. Each contract has targeted tests; the chaos harness
// is the complementary sweep that samples random COMPOSITIONS (random
// graph family × protocol × stacked fault models × step cap) and checks
// every invariant on every run, using the execution trace as the witness:
//
//   * the trace is replayed against a fresh clone() of the fault model
//     (begin_run + begin_step per step) — sound because every built-in
//     model draws randomness either only in begin_step or only in
//     filter_deliveries, never both — so the crash/recovery/churn schedule
//     in the trace must match what the model's configuration implies;
//   * delivery events are validated against the replayed down-edge and
//     crash state: exactly one live transmitting neighbor over an up edge,
//     no deliveries to or from crashed nodes, none over down edges;
//   * informed events must be monotone modulo amnesia evictions;
//   * run_result counters must equal the trace's event totals, and the
//     outcome classification must match a reachability recomputation;
//   * the frontier and reference engines must agree byte-for-byte (trial
//     fields, informed_at, per-node energy, trace NDJSON) — and when the
//     protocol has a struct-of-arrays step form, the intra-step-sharded
//     soa engine joins the same comparison;
//   * a zero-intensity composition must be bit-identical to the fault-free
//     run.
//
// `run_chaos` drives N seeded runs and emits a `radiocast.chaos.v1` JSON
// report (per-invariant check/violation counts, minimized failing
// scenarios); `check_scenario` is the single-run entry point, exposed so
// tests can aim the checker at a deliberately broken fault model and watch
// the right invariants fire. `radiocast_chaos` (tools/) is the CLI face;
// scripts/ci.sh runs a sanitizer-built smoke sweep on every push.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_model.h"
#include "graph/graph.h"
#include "obs/json.h"
#include "sim/protocol.h"

namespace radiocast::fault {

/// The invariant catalogue. Every check_scenario run evaluates all of
/// them; docs/FAULTS.md documents each in prose.
enum class chaos_invariant {
  exactly_one_transmitter,      ///< receive ⇔ exactly 1 live tx neighbor
  no_spontaneous_transmission,  ///< transmitters are informed and live
  no_delivery_to_crashed,       ///< crashed nodes neither send nor hear
  no_delivery_over_down_edge,   ///< down edges carry no signal
  informed_monotone,            ///< informed-once, modulo amnesia eviction
  fault_schedule_replay,        ///< trace fault events == model replay
  fault_accounting,             ///< result counters == trace event totals
  completion_semantics,         ///< completed/outcome match final state
  engine_bit_identity,          ///< frontier ≡ reference, byte-for-byte
  zero_intensity_identity,      ///< zero-intensity model ≡ fault-free run
};
inline constexpr int kChaosInvariantCount = 10;

/// Stable snake_case tag ("exactly_one_transmitter", …) used in reports.
const char* chaos_invariant_name(chaos_invariant inv);

/// One detected contract breach.
struct chaos_violation {
  chaos_invariant invariant = chaos_invariant::exactly_one_transmitter;
  std::string detail;  ///< deterministic, human-readable description
};

/// Outcome of checking one scenario. `checks` counts primitive
/// evaluations per invariant; `violation_counts` counts every breach,
/// while `violations` stores details for only the first few (bounded so a
/// badly broken model cannot allocate without limit).
struct scenario_check_result {
  std::array<std::int64_t, kChaosInvariantCount> checks{};
  std::array<std::int64_t, kChaosInvariantCount> violation_counts{};
  std::vector<chaos_violation> violations;

  bool ok() const;
};

/// Knobs for the SoA leg of check_scenario. Defaults force intra-step
/// sharding even on the tiny sampled graphs (2 threads, grain 1) so the
/// ordered phase merge is genuinely exercised; `debug_unordered_merge` is
/// test instrumentation that sabotages the merge order, letting tests
/// confirm engine_bit_identity actually catches an out-of-order reduction.
struct soa_check_options {
  int step_threads = 2;
  std::int64_t step_shard_grain = 1;
  bool debug_unordered_merge = false;
};

/// Runs `proto` on `g` with node 0 as source under `model` (nullable ⇒
/// fault-free), once per engine with full traces, and checks every
/// invariant. When the protocol has an SoA step form (soa_runner() non
/// null) a third, intra-step-sharded soa run joins the bit-identity
/// comparison under `soa`'s knobs. `seed` seeds every run;
/// `zero_intensity` additionally runs the fault-free twin and demands
/// bit-identity. Requires identity labeling (the trace oracle equates
/// message labels with node ids).
scenario_check_result check_scenario(const graph& g, const protocol& proto,
                                     fault_model* model, std::uint64_t seed,
                                     std::int64_t max_steps,
                                     bool zero_intensity,
                                     const soa_check_options& soa = {});

struct chaos_options {
  std::int64_t runs = 200;      ///< sampled scenarios (one seed each)
  std::uint64_t base_seed = 1;  ///< scenario i runs with seed base_seed+i
  std::int64_t max_steps = 1500;  ///< largest sampled step cap
  int max_recorded_failures = 8;  ///< detail records kept (counts are exact)
  bool minimize = true;  ///< greedily shrink failing scenarios before recording
};

/// Per-invariant roll-up for the report.
struct invariant_stats {
  std::int64_t checks = 0;
  std::int64_t violations = 0;
};

/// One recorded failure, post-minimization: the smallest model subset and
/// step cap that still reproduces a violation under the same seed.
struct chaos_failure {
  std::uint64_t seed = 0;
  std::string scenario;   ///< graph/protocol/faults/cap description
  std::string invariant;  ///< first violated invariant's tag
  std::string detail;
  bool minimized = false;  ///< true when shrinking removed anything
};

struct chaos_report {
  chaos_options config;
  std::int64_t runs = 0;
  std::int64_t failed_runs = 0;
  std::array<invariant_stats, kChaosInvariantCount> invariants{};
  std::vector<chaos_failure> failures;

  bool ok() const { return failed_runs == 0; }
  /// Schema "radiocast.chaos.v1" (validated by `radiocast_inspect
  /// validate` through validate_chaos_report below).
  obs::json_value to_json() const;
};

/// Runs the sampled sweep. Deterministic: the same options produce the
/// same scenarios, the same verdicts, and the same report.
chaos_report run_chaos(const chaos_options& opts);

/// Structural validation of a radiocast.chaos.v1 document (field presence,
/// types, known invariant names, counter consistency: ok ⇔ failed_runs ==
/// 0 ⇔ zero violations; violations ≤ checks; recorded failures ≤
/// failed_runs). Appends one message per defect to `errors` when given.
bool validate_chaos_report(const obs::json_value& doc,
                           std::vector<std::string>* errors = nullptr);

}  // namespace radiocast::fault
