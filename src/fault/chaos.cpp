// Chaos harness implementation. Three layers:
//
//   * verify_one_engine — the trace oracle: replays the run's trace against
//     an independently maintained model of the radio semantics (arrival
//     counting over the replayed crash/down state) and a fresh clone of the
//     fault model (begin_run + begin_step per step reproduces the fault
//     schedule; see the header on why that is sound);
//   * check_scenario — runs every engine (frontier, reference, and the
//     intra-step-sharded soa engine when the protocol has an SoA form,
//     plus the fault-free twin for zero-intensity scenarios), feeds each
//     trace through the oracle, and demands byte-identity across engines;
//   * run_chaos — the seeded sampler: graph family × protocol × stacked
//     fault models × step cap, with greedy minimization of failures.
#include "fault/chaos.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "core/runner.h"
#include "fault/churn.h"
#include "fault/crash.h"
#include "fault/jammer.h"
#include "fault/loss.h"
#include "fault/partition.h"
#include "fault/recovery.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "util/assert.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace radiocast::fault {

namespace {

/// Scenario-sampling salt: keeps the sampler's stream independent of every
/// fault model's stream and of the per-node protocol generators.
constexpr std::uint64_t kScenarioSalt = 0x5eedc4a050000003ULL;

/// Cap on STORED violation details; counts stay exact past it.
constexpr std::size_t kMaxStoredViolations = 24;

std::size_t iidx(chaos_invariant inv) { return static_cast<std::size_t>(inv); }

/// Count/fail recorder with the "count before fail" discipline: every fail
/// call site counts at least as many checks, so violations ≤ checks holds
/// per invariant (validate_chaos_report enforces it on reports).
class checker {
 public:
  explicit checker(scenario_check_result* out) : out_(out) {}

  void set_prefix(const char* prefix) { prefix_ = prefix; }

  void count(chaos_invariant inv, std::int64_t k = 1) {
    out_->checks[iidx(inv)] += k;
  }

  void fail(chaos_invariant inv, const std::string& detail) {
    ++out_->violation_counts[iidx(inv)];
    if (out_->violations.size() < kMaxStoredViolations) {
      out_->violations.push_back({inv, prefix_ + detail});
    }
  }

 private:
  scenario_check_result* out_;
  std::string prefix_;
};

/// Sorted-vector edge set: deterministic, and no unordered-container
/// iteration surface for the determinism lint to worry about. Keys match
/// the simulator's normalization (undirected edges are stored u ≤ v).
class edge_set {
 public:
  explicit edge_set(bool directed) : directed_(directed) {}

  bool insert(node_id a, node_id b) {
    const std::uint64_t k = key(a, b);
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
    if (it != keys_.end() && *it == k) return false;
    keys_.insert(it, k);
    return true;
  }

  bool erase(node_id a, node_id b) {
    const std::uint64_t k = key(a, b);
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
    if (it == keys_.end() || *it != k) return false;
    keys_.erase(it);
    return true;
  }

  bool contains(node_id a, node_id b) const {
    if (keys_.empty()) return false;
    const std::uint64_t k = key(a, b);
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
    return it != keys_.end() && *it == k;
  }

 private:
  std::uint64_t key(node_id a, node_id b) const {
    if (!directed_ && a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }

  bool directed_;
  std::vector<std::uint64_t> keys_;
};

/// One begin-step fault effect, in the simulator's application order.
/// what: 0 crash, 1 recover (b = amnesia flag), 2 edge_down, 3 edge_up
/// (b = the other endpoint, in the model's buffer order).
struct fault_ev {
  int what = 0;
  node_id a = -1;
  node_id b = -1;

  friend bool operator==(const fault_ev&, const fault_ev&) = default;
};

std::string fault_ev_str(const fault_ev& e) {
  static const char* const kNames[] = {"crash", "recover", "edge_down",
                                       "edge_up"};
  std::ostringstream os;
  os << kNames[e.what] << "(" << e.a;
  if (e.what != 0) os << "," << e.b;
  os << ")";
  return os.str();
}

bool is_fault_event(trace_event::type t) {
  return t == trace_event::type::crash || t == trace_event::type::recover ||
         t == trace_event::type::edge_down || t == trace_event::type::edge_up;
}

/// The trace oracle: validates one engine's trace + run_result against the
/// radio semantics and (when the model is cloneable) an independent replay
/// of the fault schedule. `model` null ⇒ the run was fault-free.
void verify_one_engine(const graph& g, fault_model* model, std::uint64_t seed,
                       std::int64_t max_steps,
                       const std::vector<trace_event>& events,
                       const run_result& res, checker* chk) {
  const node_id n = g.node_count();
  const auto ns = static_cast<std::size_t>(n);
  const auto idx = [](node_id v) { return static_cast<std::size_t>(v); };
  const auto at_step = [](std::int64_t step, const std::string& what) {
    return "step " + std::to_string(step) + ": " + what;
  };

  // Replay clone: the ground truth for crash/down state. A model whose
  // begin_run fails to reset state, or whose schedule depends on anything
  // but (seed, graph, step), diverges from its own trace here.
  std::unique_ptr<fault_model> replay;
  if (model != nullptr) {
    replay = model->clone();
    if (replay != nullptr) replay->begin_run({&g, seed, max_steps});
  }
  const bool replay_active = replay != nullptr || model == nullptr;

  // Oracle state, mirrored off the replay schedule (or, for a
  // non-cloneable model, off the trace's own fault events).
  std::vector<std::int64_t> informed_at(ns, -1);
  informed_at[0] = 0;
  util::bitset crashed;  // step_view::crashed is the packed mask form
  crashed.assign(ns, false);
  std::vector<std::uint8_t> received_any(ns, 0);
  std::vector<std::int64_t> tx_stamp(ns, -1), arr_stamp(ns, -1),
      resolved(ns, -1), last_rx(ns, -1);
  std::vector<int> arrivals(ns, 0);
  std::vector<std::int64_t> tx_per_node(ns, 0);
  edge_set down(g.is_directed());
  std::vector<node_id> tx_list, touched;
  step_faults buf;

  const auto apply_crash = [&](node_id v) { crashed.set(idx(v)); };
  const auto apply_recover = [&](node_id v, bool amnesia) {
    crashed.reset(idx(v));
    if (amnesia) {
      received_any[idx(v)] = 0;
      if (v != 0 && informed_at[idx(v)] != -1) informed_at[idx(v)] = -1;
    }
  };

  std::int64_t total_tx = 0, total_rx = 0, total_coll = 0, total_drop = 0,
               total_crash = 0, total_rec = 0, total_churn = 0;

  std::size_t pos = 0;
  for (std::int64_t step = 0; step < res.steps; ++step) {
    // --- Begin-step faults: expected (from replay) vs recorded. ---
    std::vector<fault_ev> expected;
    if (replay != nullptr) {
      buf.clear();
      const step_view view{step, &g, &informed_at, &crashed};
      replay->begin_step(view, &buf);
      // Idempotent application, exactly like the simulator's: only
      // effective transitions produce events.
      for (const node_id v : buf.crashes) {
        if (v < 0 || v >= n || crashed.test(idx(v))) continue;
        apply_crash(v);
        expected.push_back({0, v, 0});
      }
      for (const node_recovery& r : buf.recoveries) {
        const node_id v = r.node;
        if (v < 0 || v >= n || !crashed.test(idx(v))) continue;
        apply_recover(v, r.amnesia);
        expected.push_back({1, v, r.amnesia ? node_id{1} : node_id{0}});
      }
      for (const auto& [u, v] : buf.edges_down) {
        if (down.insert(u, v)) expected.push_back({2, u, v});
      }
      for (const auto& [u, v] : buf.edges_up) {
        if (down.erase(u, v)) expected.push_back({3, u, v});
      }
    }
    std::vector<fault_ev> got;
    while (pos < events.size() && events[pos].step == step &&
           is_fault_event(events[pos].what)) {
      const trace_event& e = events[pos++];
      switch (e.what) {
        case trace_event::type::crash:
          got.push_back({0, e.node, 0});
          ++total_crash;
          break;
        case trace_event::type::recover:
          got.push_back({1, e.node, e.msg.a != 0 ? node_id{1} : node_id{0}});
          ++total_rec;
          break;
        case trace_event::type::edge_down:
          got.push_back({2, e.node, static_cast<node_id>(e.msg.a)});
          ++total_churn;
          break;
        default:  // edge_up (is_fault_event admits nothing else)
          got.push_back({3, e.node, static_cast<node_id>(e.msg.a)});
          ++total_churn;
          break;
      }
    }
    if (replay_active) {
      const std::size_t longest = std::max(expected.size(), got.size());
      chk->count(chaos_invariant::fault_schedule_replay,
                 static_cast<std::int64_t>(longest) + 1);
      for (std::size_t i = 0; i < longest; ++i) {
        if (i >= expected.size()) {
          chk->fail(chaos_invariant::fault_schedule_replay,
                    at_step(step, "trace has unexpected fault event " +
                                      fault_ev_str(got[i])));
        } else if (i >= got.size()) {
          chk->fail(chaos_invariant::fault_schedule_replay,
                    at_step(step, "trace is missing fault event " +
                                      fault_ev_str(expected[i])));
        } else if (!(expected[i] == got[i])) {
          chk->fail(chaos_invariant::fault_schedule_replay,
                    at_step(step, "expected " + fault_ev_str(expected[i]) +
                                      ", trace has " + fault_ev_str(got[i])));
        }
      }
    } else {
      // Non-cloneable model: no independent schedule — trust the trace and
      // mirror its fault events into the oracle state.
      for (const fault_ev& e : got) {
        if (e.a < 0 || e.a >= n) continue;
        switch (e.what) {
          case 0: apply_crash(e.a); break;
          case 1: apply_recover(e.a, e.b != 0); break;
          case 2: down.insert(e.a, e.b); break;
          default: down.erase(e.a, e.b); break;
        }
      }
    }

    // --- Phase 1: transmit events. ---
    tx_list.clear();
    while (pos < events.size() && events[pos].step == step &&
           events[pos].what == trace_event::type::transmit) {
      const trace_event& e = events[pos++];
      const node_id v = e.node;
      ++total_tx;
      chk->count(chaos_invariant::fault_accounting);
      if (v < 0 || v >= n) {
        chk->fail(chaos_invariant::fault_accounting,
                  at_step(step, "transmit by out-of-range node " +
                                    std::to_string(v)));
        continue;
      }
      chk->count(chaos_invariant::no_delivery_to_crashed);
      if (crashed.test(idx(v))) {
        chk->fail(chaos_invariant::no_delivery_to_crashed,
                  at_step(step,
                          "crashed node " + std::to_string(v) + " transmitted"));
      }
      chk->count(chaos_invariant::no_spontaneous_transmission);
      if (v != 0 && received_any[idx(v)] == 0) {
        chk->fail(chaos_invariant::no_spontaneous_transmission,
                  at_step(step, "node " + std::to_string(v) +
                                    " transmitted without ever receiving"));
      }
      chk->count(chaos_invariant::fault_accounting, 2);
      if (tx_stamp[idx(v)] == step) {
        chk->fail(chaos_invariant::fault_accounting,
                  at_step(step, "duplicate transmit by node " +
                                    std::to_string(v)));
        continue;
      }
      if (e.msg.from != v) {
        chk->fail(chaos_invariant::fault_accounting,
                  at_step(step, "transmit label " + std::to_string(e.msg.from) +
                                    " != node " + std::to_string(v) +
                                    " (identity labeling required)"));
      }
      tx_stamp[idx(v)] = step;
      ++tx_per_node[idx(v)];
      tx_list.push_back(v);
    }

    // --- Arrival counting over the replayed crash/down state: crashed
    // listeners hear nothing; down edges carry no signal either way. ---
    touched.clear();
    for (const node_id t : tx_list) {
      for (const node_id v : g.out_neighbors(t)) {
        if (crashed.test(idx(v))) continue;
        if (down.contains(t, v)) continue;
        if (arr_stamp[idx(v)] != step) {
          arr_stamp[idx(v)] = step;
          arrivals[idx(v)] = 0;
          touched.push_back(v);
        }
        ++arrivals[idx(v)];
      }
    }

    // --- Phase 2: resolution events (collision / receive / drop /
    // informed, in the simulator's interleaving). ---
    while (pos < events.size() && events[pos].step == step) {
      const trace_event& e = events[pos++];
      const node_id v = e.node;
      chk->count(chaos_invariant::fault_accounting);
      if (v < 0 || v >= n) {
        chk->fail(chaos_invariant::fault_accounting,
                  at_step(step, "event for out-of-range node " +
                                    std::to_string(v)));
        continue;
      }
      const bool busy = tx_stamp[idx(v)] == step;
      const int arr = arr_stamp[idx(v)] == step ? arrivals[idx(v)] : 0;
      switch (e.what) {
        case trace_event::type::collision: {
          ++total_coll;
          resolved[idx(v)] = step;
          chk->count(chaos_invariant::no_delivery_to_crashed);
          if (crashed.test(idx(v))) {
            chk->fail(chaos_invariant::no_delivery_to_crashed,
                      at_step(step, "collision observed by crashed node " +
                                        std::to_string(v)));
          }
          chk->count(chaos_invariant::exactly_one_transmitter);
          if (busy) {
            chk->fail(chaos_invariant::exactly_one_transmitter,
                      at_step(step, "transmitting node " + std::to_string(v) +
                                        " observed a collision"));
          } else if (arr < 2) {
            chk->fail(chaos_invariant::exactly_one_transmitter,
                      at_step(step, "collision at node " + std::to_string(v) +
                                        " with " + std::to_string(arr) +
                                        " arrivals"));
          }
          break;
        }
        case trace_event::type::receive:
        case trace_event::type::drop: {
          const bool is_drop = e.what == trace_event::type::drop;
          if (is_drop) {
            ++total_drop;
          } else {
            ++total_rx;
          }
          resolved[idx(v)] = step;
          const node_id s = e.msg.from;
          chk->count(chaos_invariant::no_delivery_to_crashed);
          if (crashed.test(idx(v))) {
            chk->fail(chaos_invariant::no_delivery_to_crashed,
                      at_step(step, "delivery to crashed node " +
                                        std::to_string(v)));
          }
          chk->count(chaos_invariant::exactly_one_transmitter);
          if (s < 0 || s >= n || tx_stamp[idx(s)] != step) {
            chk->fail(chaos_invariant::exactly_one_transmitter,
                      at_step(step, "delivery to node " + std::to_string(v) +
                                        " from " + std::to_string(s) +
                                        ", which did not transmit"));
            break;
          }
          chk->count(chaos_invariant::no_delivery_to_crashed);
          if (crashed.test(idx(s))) {
            chk->fail(chaos_invariant::no_delivery_to_crashed,
                      at_step(step, "delivery from crashed node " +
                                        std::to_string(s)));
          }
          chk->count(chaos_invariant::no_delivery_over_down_edge);
          if (!g.has_edge(s, v)) {
            chk->fail(chaos_invariant::no_delivery_over_down_edge,
                      at_step(step, "delivery over non-edge " +
                                        std::to_string(s) + "->" +
                                        std::to_string(v)));
          } else if (down.contains(s, v)) {
            chk->fail(chaos_invariant::no_delivery_over_down_edge,
                      at_step(step, "delivery over down edge " +
                                        std::to_string(s) + "->" +
                                        std::to_string(v)));
          }
          chk->count(chaos_invariant::exactly_one_transmitter);
          if (busy) {
            chk->fail(chaos_invariant::exactly_one_transmitter,
                      at_step(step, "busy transmitter " + std::to_string(v) +
                                        " received"));
          } else if (arr != 1) {
            chk->fail(chaos_invariant::exactly_one_transmitter,
                      at_step(step, "delivery to node " + std::to_string(v) +
                                        " with " + std::to_string(arr) +
                                        " arrivals"));
          }
          if (is_drop) {
            chk->count(chaos_invariant::fault_accounting);
            if (model == nullptr) {
              chk->fail(chaos_invariant::fault_accounting,
                        at_step(step, "drop event in a fault-free run"));
            }
          } else {
            last_rx[idx(v)] = step;
            received_any[idx(v)] = 1;
          }
          break;
        }
        case trace_event::type::informed: {
          chk->count(chaos_invariant::informed_monotone, 2);
          if (informed_at[idx(v)] != -1) {
            chk->fail(chaos_invariant::informed_monotone,
                      at_step(step, "node " + std::to_string(v) +
                                        " re-informed without an amnesia "
                                        "eviction"));
          } else {
            informed_at[idx(v)] = step;
          }
          if (last_rx[idx(v)] != step) {
            chk->fail(chaos_invariant::informed_monotone,
                      at_step(step, "node " + std::to_string(v) +
                                        " informed without a same-step "
                                        "delivery"));
          }
          break;
        }
        default:  // a fault or transmit event after resolution began
          chk->count(chaos_invariant::fault_accounting);
          chk->fail(chaos_invariant::fault_accounting,
                    at_step(step, "misordered event in resolution phase"));
          break;
      }
    }

    // --- Every surviving arrival must have been resolved: a delivery, a
    // drop, or an observed collision. ---
    for (const node_id v : touched) {
      if (tx_stamp[idx(v)] == step) continue;  // busy transmitting
      chk->count(chaos_invariant::exactly_one_transmitter);
      if (resolved[idx(v)] != step) {
        chk->fail(chaos_invariant::exactly_one_transmitter,
                  at_step(step, "arrival at node " + std::to_string(v) +
                                    " (" + std::to_string(arrivals[idx(v)]) +
                                    " transmitters) left unresolved"));
      }
    }
  }

  chk->count(chaos_invariant::fault_accounting);
  if (pos != events.size()) {
    chk->fail(chaos_invariant::fault_accounting,
              std::to_string(events.size() - pos) +
                  " trace events beyond the final step");
  }

  // --- Conservation: result counters == trace event totals. ---
  const auto acc_eq = [&](std::int64_t from_trace, std::int64_t from_result,
                          const char* what) {
    chk->count(chaos_invariant::fault_accounting);
    if (from_trace != from_result) {
      chk->fail(chaos_invariant::fault_accounting,
                std::string(what) + ": trace total " +
                    std::to_string(from_trace) + " != result " +
                    std::to_string(from_result));
    }
  };
  acc_eq(total_tx, res.transmissions, "transmissions");
  acc_eq(total_rx, res.deliveries, "deliveries");
  acc_eq(total_coll, res.collisions, "collisions");
  acc_eq(total_drop, res.suppressed_deliveries, "suppressed_deliveries");
  acc_eq(total_crash, res.crashed_nodes, "crashed_nodes");
  acc_eq(total_rec, res.recoveries, "recoveries");
  acc_eq(total_churn, res.churned_edges, "churned_edges");
  chk->count(chaos_invariant::fault_accounting, 2);
  if (informed_at != res.informed_at) {
    chk->fail(chaos_invariant::fault_accounting,
              "informed_at vector != trace-derived informed history");
  }
  if (tx_per_node != res.transmissions_per_node) {
    chk->fail(chaos_invariant::fault_accounting,
              "transmissions_per_node != trace-derived per-node counts");
  }

  // --- Completion semantics. ---
  chk->count(chaos_invariant::completion_semantics);
  if (res.completed) {
    for (node_id v = 0; v < n; ++v) {
      if (crashed.test(idx(v))) continue;
      if (idx(v) < res.informed_at.size() && res.informed_at[idx(v)] == -1) {
        chk->fail(chaos_invariant::completion_semantics,
                  "completed with uninformed live node " + std::to_string(v));
        break;
      }
    }
  }
  if (replay != nullptr && res.completed) {
    chk->count(chaos_invariant::completion_semantics);
    if (replay->pending_recoveries() != 0) {
      chk->fail(chaos_invariant::completion_semantics,
                "completed while the model still owes " +
                    std::to_string(replay->pending_recoveries()) +
                    " recoveries");
    }
  }

  // Reachability recomputation over the final surviving graph (fault-free
  // completed runs take the simulator's BFS-free shortcut: n/n).
  std::int64_t reach = 0, inf_reach = 0;
  if (model == nullptr && res.completed) {
    reach = n;
    inf_reach = n;
  } else if (!crashed.test(0)) {
    std::vector<std::uint8_t> seen(ns, 0);
    std::vector<node_id> order;
    seen[0] = 1;
    order.push_back(0);
    for (std::size_t head = 0; head < order.size(); ++head) {
      const node_id u = order[head];
      for (const node_id v : g.out_neighbors(u)) {
        if (seen[idx(v)] != 0) continue;
        if (crashed.test(idx(v))) continue;
        if (down.contains(u, v)) continue;
        seen[idx(v)] = 1;
        order.push_back(v);
      }
    }
    reach = static_cast<std::int64_t>(order.size());
    for (const node_id v : order) {
      if (idx(v) < res.informed_at.size() && res.informed_at[idx(v)] != -1) {
        ++inf_reach;
      }
    }
  }
  chk->count(chaos_invariant::completion_semantics, 3);
  if (res.reachable_nodes != reach) {
    chk->fail(chaos_invariant::completion_semantics,
              "reachable_nodes " + std::to_string(res.reachable_nodes) +
                  " != recomputed " + std::to_string(reach));
  }
  if (res.informed_reachable != inf_reach) {
    chk->fail(chaos_invariant::completion_semantics,
              "informed_reachable " + std::to_string(res.informed_reachable) +
                  " != recomputed " + std::to_string(inf_reach));
  }
  run_outcome expect = run_outcome::stuck;
  if (res.completed) {
    expect = run_outcome::completed;
  } else if (model != nullptr && crashed.test(0)) {
    expect = run_outcome::source_lost;
  } else if (inf_reach == reach) {
    expect = run_outcome::unreachable;
  }
  if (res.outcome != expect) {
    chk->fail(chaos_invariant::completion_semantics,
              std::string("outcome ") + run_outcome_name(res.outcome) +
                  " != expected " + run_outcome_name(expect));
  }
}

/// Field-by-field run_result comparison (engine identity and the
/// zero-intensity twin share it, under different invariants).
void compare_results(const run_result& a, const run_result& b,
                     chaos_invariant inv, checker* chk) {
  const auto eq = [&](std::int64_t x, std::int64_t y, const char* field) {
    chk->count(inv);
    if (x != y) {
      chk->fail(inv, std::string(field) + " differs: " + std::to_string(x) +
                         " vs " + std::to_string(y));
    }
  };
  eq(a.completed ? 1 : 0, b.completed ? 1 : 0, "completed");
  eq(a.steps, b.steps, "steps");
  eq(a.informed_step, b.informed_step, "informed_step");
  eq(a.transmissions, b.transmissions, "transmissions");
  eq(a.collisions, b.collisions, "collisions");
  eq(a.deliveries, b.deliveries, "deliveries");
  eq(a.crashed_nodes, b.crashed_nodes, "crashed_nodes");
  eq(a.recoveries, b.recoveries, "recoveries");
  eq(a.suppressed_deliveries, b.suppressed_deliveries,
     "suppressed_deliveries");
  eq(a.churned_edges, b.churned_edges, "churned_edges");
  eq(a.reachable_nodes, b.reachable_nodes, "reachable_nodes");
  eq(a.informed_reachable, b.informed_reachable, "informed_reachable");
  chk->count(inv, 3);
  if (a.outcome != b.outcome) {
    chk->fail(inv, std::string("outcome differs: ") +
                       run_outcome_name(a.outcome) + " vs " +
                       run_outcome_name(b.outcome));
  }
  if (a.informed_at != b.informed_at) {
    chk->fail(inv, "informed_at vectors differ");
  }
  if (a.transmissions_per_node != b.transmissions_per_node) {
    chk->fail(inv, "transmissions_per_node vectors differ");
  }
}

/// Byte-level NDJSON comparison; on mismatch, reports the first line that
/// differs (truncated — the detail is a pointer, not a dump).
void compare_traces(const trace& a, const trace& b, chaos_invariant inv,
                    checker* chk) {
  std::ostringstream sa, sb;
  a.to_ndjson(sa);
  b.to_ndjson(sb);
  const std::string ja = sa.str(), jb = sb.str();
  chk->count(inv);
  if (ja == jb) return;
  std::istringstream la(ja), lb(jb);
  std::string linea, lineb;
  std::int64_t lineno = 0;
  while (true) {
    const bool ha = static_cast<bool>(std::getline(la, linea));
    const bool hb = static_cast<bool>(std::getline(lb, lineb));
    ++lineno;
    if (!ha && !hb) break;  // lengths equal yet strings differ — impossible
    if (!ha || !hb || linea != lineb) {
      const auto clip = [](std::string s) {
        if (s.size() > 96) s.resize(96);
        return s;
      };
      chk->fail(inv, "traces differ at line " + std::to_string(lineno) +
                         ": \"" + clip(ha ? linea : std::string("<end>")) +
                         "\" vs \"" + clip(hb ? lineb : std::string("<end>")) +
                         "\"");
      return;
    }
  }
  chk->fail(inv, "traces differ (no differing line found)");
}

// ---------------------------------------------------------------------------
// Scenario sampling.
// ---------------------------------------------------------------------------

/// One sampled fault-model configuration. kind: 0 crash, 1 loss,
/// 2 jam_oblivious, 3 jam_greedy, 4 churn, 5 recovery_retain,
/// 6 recovery_amnesia, 7 partition, 8 frontier_cut.
struct model_spec {
  int kind = 0;
  double p = 0.0;  ///< main probability knob (crash/loss/churn/toggle)
  int budget = 0;  ///< jammer / frontier-cut budget
  std::int64_t downtime = 0;
  double recovery_p = 0.0;
  std::int64_t period = 0;
  std::int64_t duration = 0;
  double fraction = 0.0;
};

constexpr int kSpecKinds = 9;

/// Zeroes every intensity knob so the model is a provable no-op (the
/// zero-intensity ≡ fault-free invariant).
void zero_spec(model_spec* s) {
  s->p = 0.0;
  s->budget = 0;
  s->period = 0;
}

model_spec sample_spec(rng* gen) {
  model_spec sp;
  sp.kind = static_cast<int>(gen->below(kSpecKinds));
  switch (sp.kind) {
    case 0:
      sp.p = 0.002 + gen->uniform01() * 0.02;
      break;
    case 1:
      sp.p = 0.05 + gen->uniform01() * 0.25;
      break;
    case 2:
      sp.budget = static_cast<int>(1 + gen->below(3));
      break;
    case 3:
      sp.budget = static_cast<int>(1 + gen->below(2));
      break;
    case 4:
      sp.p = 0.02 + gen->uniform01() * 0.15;
      break;
    case 5:
    case 6: {
      sp.p = 0.005 + gen->uniform01() * 0.03;
      if (gen->flip()) {
        sp.downtime = static_cast<std::int64_t>(2 + gen->below(12));
      } else {
        sp.recovery_p = 0.05 + gen->uniform01() * 0.3;
      }
      break;
    }
    case 7: {
      sp.p = gen->uniform01() * 0.05;
      sp.period = static_cast<std::int64_t>(16 + gen->below(48));
      sp.duration = static_cast<std::int64_t>(
          1 + gen->below(static_cast<std::uint64_t>(sp.period / 2)));
      sp.fraction = 0.15 + gen->uniform01() * 0.35;
      break;
    }
    default:
      sp.budget = static_cast<int>(1 + gen->below(2));
      break;
  }
  return sp;
}

std::unique_ptr<fault_model> make_spec_model(const model_spec& s) {
  switch (s.kind) {
    case 0: {
      crash_options o;
      o.crash_probability = s.p;
      return std::make_unique<crash_model>(o);
    }
    case 1: {
      loss_options o;
      o.drop_probability = s.p;
      return std::make_unique<loss_model>(o);
    }
    case 2:
    case 3: {
      jammer_options o;
      o.budget = s.budget;
      o.strategy = s.kind == 2 ? jam_strategy::oblivious_random
                               : jam_strategy::greedy_frontier;
      return std::make_unique<jammer_model>(o);
    }
    case 4: {
      churn_options o;
      o.toggle_probability = s.p;
      return std::make_unique<churn_model>(o);
    }
    case 5:
    case 6: {
      recovery_options o;
      o.crash_probability = s.p;
      o.mode = s.kind == 5 ? recovery_mode::retain : recovery_mode::amnesia;
      o.downtime = s.downtime;
      o.recovery_probability = s.recovery_p;
      return std::make_unique<recovery_model>(o);
    }
    case 7: {
      partition_options o;
      o.toggle_probability = s.p;
      o.period = s.period;
      o.duration = s.duration;
      o.island_fraction = s.fraction;
      return std::make_unique<partition_model>(o);
    }
    default: {
      frontier_cut_options o;
      o.budget_per_step = s.budget;
      o.spare_source = true;
      return std::make_unique<frontier_cut_model>(o);
    }
  }
}

std::string describe_spec(const model_spec& s) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  switch (s.kind) {
    case 0:
      os << "crash(p=" << s.p << ")";
      break;
    case 1:
      os << "loss(p=" << s.p << ")";
      break;
    case 2:
      os << "jam_oblivious(budget=" << s.budget << ")";
      break;
    case 3:
      os << "jam_greedy(budget=" << s.budget << ")";
      break;
    case 4:
      os << "churn(p=" << s.p << ")";
      break;
    case 5:
    case 6:
      os << (s.kind == 5 ? "recovery_retain" : "recovery_amnesia")
         << "(p=" << s.p << ",downtime=" << s.downtime
         << ",recover_p=" << s.recovery_p << ")";
      break;
    case 7:
      os << "partition(toggle=" << s.p << ",period=" << s.period
         << ",duration=" << s.duration << ",island=" << s.fraction << ")";
      break;
    default:
      os << "frontier_cut(budget=" << s.budget << ")";
      break;
  }
  return os.str();
}

struct scenario {
  graph g;
  std::string graph_desc;
  std::string proto;
  int known_d = -1;
  std::int64_t cap = 0;
  bool zero = false;
  std::vector<model_spec> specs;
};

std::string describe_scenario(const scenario& s) {
  std::ostringstream os;
  os << s.graph_desc << " proto=" << s.proto;
  if (s.known_d > 0) os << "(D=" << s.known_d << ")";
  os << " cap=" << s.cap;
  if (s.zero) os << " zero-intensity";
  os << " faults=[";
  for (std::size_t i = 0; i < s.specs.size(); ++i) {
    if (i != 0) os << "+";
    os << describe_spec(s.specs[i]);
  }
  os << "]";
  return os.str();
}

scenario sample_scenario(std::uint64_t seed, const chaos_options& opts) {
  rng gen(mix_seed(seed, kScenarioSalt));
  const std::uint64_t family = gen.below(8);
  const auto n = static_cast<node_id>(8 + gen.below(41));  // 8 … 48
  std::ostringstream gd;
  auto build = [&]() -> graph {
    switch (family) {
      case 0:
        gd << "path(n=" << n << ")";
        return make_path(n);
      case 1:
        gd << "cycle(n=" << n << ")";
        return make_cycle(n);
      case 2:
        gd << "star(n=" << n << ")";
        return make_star(n);
      case 3: {
        const node_id k = std::min<node_id>(n, 24);
        gd << "complete(n=" << k << ")";
        return make_complete(k);
      }
      case 4: {
        const auto rows = static_cast<node_id>(2 + gen.below(5));
        const auto cols = static_cast<node_id>(2 + gen.below(7));
        gd << "grid(" << rows << "x" << cols << ")";
        return make_grid(rows, cols);
      }
      case 5: {
        const double p = 0.08 + gen.uniform01() * 0.2;
        gd << "gnp(n=" << n << ")";
        return make_gnp_connected(n, p, gen);
      }
      case 6: {
        const auto spine = static_cast<node_id>(3 + gen.below(8));
        const auto legs = static_cast<node_id>(1 + gen.below(3));
        gd << "caterpillar(spine=" << spine << ",legs=" << legs << ")";
        return make_caterpillar(spine, legs);
      }
      default: {
        const int d = static_cast<int>(2 + gen.below(5));
        gd << "layered(n=" << n << ",D=" << d << ")";
        return make_complete_layered_uniform(n, d);
      }
    }
  };
  graph g = build();
  const node_id nn = g.node_count();

  scenario s{std::move(g), gd.str(), std::string{}, -1, 0, false, {}};
  // Token protocols assume a crashed peer stays crashed; under an amnesia
  // restart their mid-protocol state machines legitimately RC_CHECK. The
  // fuzzer therefore samples the restart-tolerant registry subset.
  static const char* const kProtocols[] = {"decay", "kp", "kp-doubling",
                                           "round-robin"};
  s.proto = kProtocols[gen.below(4)];
  if (s.proto == "kp") s.known_d = static_cast<int>(nn);  // always ≥ D
  const std::int64_t caps[3] = {200, 600, opts.max_steps};
  s.cap = caps[gen.below(3)];
  s.zero = gen.uniform01() < 0.15;
  const std::size_t spec_count = 1 + gen.below(3);
  for (std::size_t i = 0; i < spec_count; ++i) {
    s.specs.push_back(sample_spec(&gen));
  }
  if (s.zero) {
    for (model_spec& sp : s.specs) zero_spec(&sp);
  }
  return s;
}

scenario_check_result run_scenario(const scenario& s, std::uint64_t seed) {
  const node_id nn = s.g.node_count();
  const std::unique_ptr<protocol> proto =
      make_protocol(s.proto, nn - 1, s.known_d);
  std::vector<std::unique_ptr<fault_model>> owned;
  std::vector<fault_model*> raw;
  owned.reserve(s.specs.size());
  for (const model_spec& sp : s.specs) {
    owned.push_back(make_spec_model(sp));
    raw.push_back(owned.back().get());
  }
  if (raw.size() == 1) {
    return check_scenario(s.g, *proto, raw[0], seed, s.cap, s.zero);
  }
  composite_fault_model comp(raw);
  return check_scenario(s.g, *proto, &comp, seed, s.cap, s.zero);
}

/// Greedy shrink: drop stacked models one at a time, then halve the step
/// cap, keeping every candidate that still fails under the same seed.
/// Bounded by a rerun budget so minimization cannot dominate the sweep.
bool minimize_scenario(scenario* s, scenario_check_result* r,
                       std::uint64_t seed) {
  bool shrank = false;
  int budget = 24;
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    if (s->specs.size() > 1) {
      for (std::size_t i = 0; i < s->specs.size() && budget > 0; ++i) {
        scenario cand = *s;
        cand.specs.erase(cand.specs.begin() +
                         static_cast<std::ptrdiff_t>(i));
        --budget;
        scenario_check_result cr = run_scenario(cand, seed);
        if (!cr.ok()) {
          *s = std::move(cand);
          *r = std::move(cr);
          shrank = true;
          progress = true;
          break;
        }
      }
    }
    if (!progress && budget > 0 && s->cap > 64) {
      scenario cand = *s;
      cand.cap = std::max<std::int64_t>(64, s->cap / 2);
      --budget;
      scenario_check_result cr = run_scenario(cand, seed);
      if (!cr.ok()) {
        *s = std::move(cand);
        *r = std::move(cr);
        shrank = true;
        progress = true;
      }
    }
  }
  return shrank;
}

}  // namespace

const char* chaos_invariant_name(chaos_invariant inv) {
  switch (inv) {
    case chaos_invariant::exactly_one_transmitter:
      return "exactly_one_transmitter";
    case chaos_invariant::no_spontaneous_transmission:
      return "no_spontaneous_transmission";
    case chaos_invariant::no_delivery_to_crashed:
      return "no_delivery_to_crashed";
    case chaos_invariant::no_delivery_over_down_edge:
      return "no_delivery_over_down_edge";
    case chaos_invariant::informed_monotone:
      return "informed_monotone_mod_amnesia";
    case chaos_invariant::fault_schedule_replay:
      return "fault_schedule_replay";
    case chaos_invariant::fault_accounting:
      return "fault_accounting_conserved";
    case chaos_invariant::completion_semantics:
      return "completion_semantics";
    case chaos_invariant::engine_bit_identity:
      return "engine_bit_identity";
    case chaos_invariant::zero_intensity_identity:
      return "zero_intensity_identity";
  }
  return "unknown";
}

bool scenario_check_result::ok() const {
  for (const std::int64_t v : violation_counts) {
    if (v != 0) return false;
  }
  return true;
}

scenario_check_result check_scenario(const graph& g, const protocol& proto,
                                     fault_model* model, std::uint64_t seed,
                                     std::int64_t max_steps,
                                     bool zero_intensity,
                                     const soa_check_options& soa) {
  RC_REQUIRE(max_steps >= 1);
  scenario_check_result out;
  checker chk(&out);

  run_options opts;
  opts.max_steps = max_steps;
  opts.seed = seed;
  opts.faults = model;
  trace tf;
  opts.sink = &tf;
  opts.engine = step_engine::frontier;
  const run_result rf = run_broadcast(g, proto, opts);
  trace tr;
  opts.sink = &tr;
  opts.engine = step_engine::reference;
  const run_result rr = run_broadcast(g, proto, opts);

  chk.set_prefix("frontier: ");
  verify_one_engine(g, model, seed, max_steps, tf.events(), rf, &chk);
  chk.set_prefix("reference: ");
  verify_one_engine(g, model, seed, max_steps, tr.events(), rr, &chk);
  chk.set_prefix("engines: ");
  compare_results(rf, rr, chaos_invariant::engine_bit_identity, &chk);
  compare_traces(tf, tr, chaos_invariant::engine_bit_identity, &chk);

  if (proto.soa_runner() != nullptr) {
    // Third leg: the struct-of-arrays engine with intra-step sharding
    // forced on (soa defaults: 2 threads, grain 1), so the ordered phase
    // merge participates in the bit-identity contract on every sampled
    // scenario, not just at benchmark scale.
    run_options sopts;
    sopts.max_steps = max_steps;
    sopts.seed = seed;
    sopts.faults = model;
    trace ts;
    sopts.sink = &ts;
    sopts.engine = step_engine::soa;
    sopts.step_threads = soa.step_threads;
    sopts.step_shard_grain = soa.step_shard_grain;
    sopts.debug_unordered_merge = soa.debug_unordered_merge;
    const run_result rs = run_broadcast(g, proto, sopts);
    chk.set_prefix("soa: ");
    verify_one_engine(g, model, seed, max_steps, ts.events(), rs, &chk);
    chk.set_prefix("engines(soa): ");
    compare_results(rs, rr, chaos_invariant::engine_bit_identity, &chk);
    compare_traces(ts, tr, chaos_invariant::engine_bit_identity, &chk);
  }

  if (zero_intensity && model != nullptr) {
    run_options zopts;
    zopts.max_steps = max_steps;
    zopts.seed = seed;
    trace tz;
    zopts.sink = &tz;
    zopts.engine = step_engine::frontier;
    const run_result rz = run_broadcast(g, proto, zopts);
    chk.set_prefix("zero-intensity: ");
    compare_results(rf, rz, chaos_invariant::zero_intensity_identity, &chk);
    compare_traces(tf, tz, chaos_invariant::zero_intensity_identity, &chk);
  }
  return out;
}

chaos_report run_chaos(const chaos_options& opts) {
  RC_REQUIRE(opts.runs >= 0);
  RC_REQUIRE(opts.max_steps >= 1);
  RC_REQUIRE(opts.max_recorded_failures >= 0);
  chaos_report rep;
  rep.config = opts;
  for (std::int64_t i = 0; i < opts.runs; ++i) {
    const std::uint64_t seed = opts.base_seed + static_cast<std::uint64_t>(i);
    scenario s = sample_scenario(seed, opts);
    scenario_check_result r = run_scenario(s, seed);
    ++rep.runs;
    for (int k = 0; k < kChaosInvariantCount; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      rep.invariants[ks].checks += r.checks[ks];
      rep.invariants[ks].violations += r.violation_counts[ks];
    }
    if (r.ok()) continue;
    ++rep.failed_runs;
    if (static_cast<int>(rep.failures.size()) >= opts.max_recorded_failures) {
      continue;
    }
    bool shrank = false;
    if (opts.minimize) shrank = minimize_scenario(&s, &r, seed);
    chaos_failure f;
    f.seed = seed;
    f.scenario = describe_scenario(s);
    f.minimized = shrank;
    if (!r.violations.empty()) {
      f.invariant = chaos_invariant_name(r.violations.front().invariant);
      f.detail = r.violations.front().detail;
    } else {
      for (int k = 0; k < kChaosInvariantCount; ++k) {
        if (r.violation_counts[static_cast<std::size_t>(k)] > 0) {
          f.invariant = chaos_invariant_name(static_cast<chaos_invariant>(k));
          break;
        }
      }
    }
    rep.failures.push_back(std::move(f));
  }
  return rep;
}

obs::json_value chaos_report::to_json() const {
  obs::json_value doc = obs::json_value::object();
  doc.set("schema", "radiocast.chaos.v1");
  obs::json_value cfg = obs::json_value::object();
  cfg.set("runs", config.runs);
  cfg.set("base_seed", static_cast<std::int64_t>(config.base_seed));
  cfg.set("max_steps", config.max_steps);
  cfg.set("max_recorded_failures", config.max_recorded_failures);
  cfg.set("minimize", config.minimize);
  doc.set("config", std::move(cfg));
  doc.set("runs", runs);
  doc.set("failed_runs", failed_runs);
  doc.set("ok", ok());
  obs::json_value invs = obs::json_value::array();
  for (int k = 0; k < kChaosInvariantCount; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    obs::json_value e = obs::json_value::object();
    e.set("invariant", chaos_invariant_name(static_cast<chaos_invariant>(k)));
    e.set("checks", invariants[ks].checks);
    e.set("violations", invariants[ks].violations);
    invs.push_back(std::move(e));
  }
  doc.set("invariants", std::move(invs));
  obs::json_value fails = obs::json_value::array();
  for (const chaos_failure& f : failures) {
    obs::json_value e = obs::json_value::object();
    e.set("seed", static_cast<std::int64_t>(f.seed));
    e.set("scenario", f.scenario);
    e.set("invariant", f.invariant);
    e.set("detail", f.detail);
    e.set("minimized", f.minimized);
    fails.push_back(std::move(e));
  }
  doc.set("failures", std::move(fails));
  return doc;
}

bool validate_chaos_report(const obs::json_value& doc,
                           std::vector<std::string>* errors) {
  bool ok = true;
  const auto err = [&](const std::string& m) {
    ok = false;
    if (errors != nullptr) errors->push_back(m);
  };
  if (!doc.is_object()) {
    err("chaos report: not a JSON object");
    return false;
  }
  const obs::json_value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "radiocast.chaos.v1") {
    err("schema: missing or not \"radiocast.chaos.v1\"");
  }
  const auto int_field = [&](const obs::json_value& parent, const char* key,
                             const std::string& where) -> std::optional<std::int64_t> {
    const obs::json_value* f = parent.find(key);
    if (f == nullptr || f->type() != obs::json_value::kind::integer) {
      err(where + key + ": missing or not an integer");
      return std::nullopt;
    }
    return f->as_int();
  };

  const std::optional<std::int64_t> runs = int_field(doc, "runs", "");
  const std::optional<std::int64_t> failed = int_field(doc, "failed_runs", "");
  if (runs.has_value() && *runs < 0) err("runs: negative");
  if (failed.has_value() && *failed < 0) err("failed_runs: negative");
  if (runs.has_value() && failed.has_value() && *failed > *runs) {
    err("failed_runs exceeds runs");
  }
  const obs::json_value* okf = doc.find("ok");
  if (okf == nullptr || okf->type() != obs::json_value::kind::boolean) {
    err("ok: missing or not a boolean");
  } else if (failed.has_value() && okf->as_bool() != (*failed == 0)) {
    err("ok flag inconsistent with failed_runs");
  }

  const obs::json_value* cfg = doc.find("config");
  if (cfg == nullptr || !cfg->is_object()) {
    err("config: missing or not an object");
  } else {
    const std::optional<std::int64_t> base =
        int_field(*cfg, "base_seed", "config.");
    if (base.has_value() && *base < 0) err("config.base_seed: negative");
    (void)int_field(*cfg, "runs", "config.");
    const std::optional<std::int64_t> cap =
        int_field(*cfg, "max_steps", "config.");
    if (cap.has_value() && *cap < 1) err("config.max_steps: must be >= 1");
  }

  std::int64_t total_violations = 0;
  const obs::json_value* invs = doc.find("invariants");
  if (invs == nullptr || !invs->is_array()) {
    err("invariants: missing or not an array");
  } else {
    if (invs->items().size() !=
        static_cast<std::size_t>(kChaosInvariantCount)) {
      err("invariants: expected exactly " +
          std::to_string(kChaosInvariantCount) + " entries, found " +
          std::to_string(invs->items().size()));
    }
    std::vector<std::string> seen;
    for (const obs::json_value& e : invs->items()) {
      if (!e.is_object()) {
        err("invariants[]: entry is not an object");
        continue;
      }
      const obs::json_value* name = e.find("invariant");
      std::string tag = "<unnamed>";
      if (name == nullptr || !name->is_string()) {
        err("invariants[]: missing invariant name");
      } else {
        tag = name->as_string();
        bool known = false;
        for (int k = 0; k < kChaosInvariantCount; ++k) {
          if (tag == chaos_invariant_name(static_cast<chaos_invariant>(k))) {
            known = true;
            break;
          }
        }
        if (!known) err("invariants[]: unknown invariant \"" + tag + "\"");
        if (std::find(seen.begin(), seen.end(), tag) != seen.end()) {
          err("invariants[]: duplicate invariant \"" + tag + "\"");
        }
        seen.push_back(tag);
      }
      const std::optional<std::int64_t> checks =
          int_field(e, "checks", "invariants[" + tag + "].");
      const std::optional<std::int64_t> viols =
          int_field(e, "violations", "invariants[" + tag + "].");
      if (checks.has_value() && *checks < 0) {
        err("invariants[" + tag + "].checks: negative");
      }
      if (viols.has_value()) {
        if (*viols < 0) err("invariants[" + tag + "].violations: negative");
        total_violations += std::max<std::int64_t>(*viols, 0);
        if (checks.has_value() && *viols > *checks) {
          err("invariants[" + tag + "]: violations exceed checks");
        }
      }
    }
    if (failed.has_value()) {
      if (total_violations == 0 && *failed != 0) {
        err("failed_runs > 0 but no invariant reports violations");
      }
      if (total_violations != 0 && *failed == 0) {
        err("invariant violations reported but failed_runs == 0");
      }
    }
  }

  const obs::json_value* fails = doc.find("failures");
  if (fails == nullptr || !fails->is_array()) {
    err("failures: missing or not an array");
  } else {
    if (failed.has_value() &&
        static_cast<std::int64_t>(fails->items().size()) > *failed) {
      err("failures: more recorded failures than failed_runs");
    }
    for (const obs::json_value& e : fails->items()) {
      if (!e.is_object()) {
        err("failures[]: entry is not an object");
        continue;
      }
      const std::optional<std::int64_t> seedv =
          int_field(e, "seed", "failures[].");
      if (seedv.has_value() && *seedv < 0) err("failures[].seed: negative");
      for (const char* key : {"scenario", "invariant", "detail"}) {
        const obs::json_value* f = e.find(key);
        if (f == nullptr || !f->is_string()) {
          err(std::string("failures[].") + key + ": missing or not a string");
        }
      }
      const obs::json_value* inv = e.find("invariant");
      if (inv != nullptr && inv->is_string()) {
        bool known = false;
        for (int k = 0; k < kChaosInvariantCount; ++k) {
          if (inv->as_string() ==
              chaos_invariant_name(static_cast<chaos_invariant>(k))) {
            known = true;
            break;
          }
        }
        if (!known) {
          err("failures[].invariant: unknown \"" + inv->as_string() + "\"");
        }
      }
      const obs::json_value* mini = e.find("minimized");
      if (mini == nullptr ||
          mini->type() != obs::json_value::kind::boolean) {
        err("failures[].minimized: missing or not a boolean");
      }
    }
  }
  return ok;
}

}  // namespace radiocast::fault
