#include "fault/loss.h"

#include "util/assert.h"

namespace radiocast::fault {

namespace {
constexpr std::uint64_t kLossSalt = 0x1055'feed'5eed'0002ULL;
}  // namespace

loss_model::loss_model(loss_options opts) : opts_(opts) {
  RC_REQUIRE_MSG(
      opts_.drop_probability >= 0.0 && opts_.drop_probability <= 1.0,
      "drop_probability must lie in [0, 1]");
}

void loss_model::begin_run(const run_view& view) {
  gen_ = rng(mix_seed(view.seed, kLossSalt));
  dropped_count_ = 0;
  (void)view;
}

void loss_model::filter_deliveries(
    const step_view& view, std::vector<delivery_candidate>* candidates) {
  (void)view;
  if (opts_.drop_probability <= 0.0) return;
  for (delivery_candidate& c : *candidates) {
    if (c.suppressed) continue;  // spend no randomness on dead candidates
    if (gen_.bernoulli(opts_.drop_probability)) {
      c.suppressed = true;
      ++dropped_count_;
    }
  }
}

}  // namespace radiocast::fault
