// Crash-stop node failures.
//
// A crashed node leaves the computation permanently: it never transmits
// again, and transmissions toward it are absorbed (it cannot become
// informed). This is the crash-stop model of the unreliable-devices
// literature (cf. Czumaj–Davies, "Randomized Communication Without Network
// Knowledge"); the simulator exempts crashed nodes from the completion
// condition, so "completed" means "every surviving node got the message".
//
// Two triggers, combinable:
//   * a fixed schedule of (node, step) pairs — the node crashes at the
//     START of that step, before transmitting in it;
//   * a per-step crash probability applied independently to every live
//     node (seeded from the run seed; same seed ⇒ same crash schedule).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/fault_model.h"

namespace radiocast::fault {

struct crash_options {
  /// Deterministic crashes: node v crashes at the start of step s.
  std::vector<std::pair<node_id, std::int64_t>> schedule;
  /// Per live node, per step, independent crash probability in [0, 1].
  double crash_probability = 0.0;
  /// Never crash node 0 (keeps the broadcast solvable; the crashed-source
  /// experiment sets this to false and schedules the source explicitly).
  bool spare_source = false;
};

class crash_model final : public fault_model {
 public:
  explicit crash_model(crash_options opts);

  std::string name() const override { return "crash"; }
  void begin_run(const run_view& view) override;
  void begin_step(const step_view& view, step_faults* out) override;

  /// Nodes this model has crashed so far in the current run.
  std::int64_t crashed_count() const { return crashed_count_; }

  std::unique_ptr<fault_model> clone() const override {
    return std::make_unique<crash_model>(opts_);
  }

 private:
  crash_options opts_;
  rng gen_{0};
  node_id n_ = 0;
  std::vector<std::uint8_t> down_;      // this model's own crash record
  std::size_t schedule_cursor_ = 0;     // into sorted schedule_
  std::vector<std::pair<std::int64_t, node_id>> schedule_;  // (step, node)
  std::int64_t crashed_count_ = 0;
};

}  // namespace radiocast::fault
