#include "fault/fault_model.h"

#include "util/assert.h"

namespace radiocast::fault {

std::uint64_t mix_seed(std::uint64_t run_seed, std::uint64_t salt) {
  // One splitmix64 step over the xor keeps distinct salts decorrelated even
  // for adjacent run seeds (run_trials uses base_seed + t).
  std::uint64_t state = run_seed ^ salt;
  return splitmix64(state);
}

composite_fault_model::composite_fault_model(std::vector<fault_model*> models)
    : models_(std::move(models)) {
  for (const fault_model* m : models_) RC_REQUIRE(m != nullptr);
}

std::string composite_fault_model::name() const {
  std::string out = "composite(";
  for (std::size_t i = 0; i < models_.size(); ++i) {
    if (i != 0) out += '+';
    out += models_[i]->name();
  }
  out += ')';
  return out;
}

void composite_fault_model::begin_run(const run_view& view) {
  // Children receive independently derived seeds keyed by position, so two
  // instances of the same model type do not mirror each other's draws.
  for (std::size_t i = 0; i < models_.size(); ++i) {
    run_view child = view;
    child.seed = mix_seed(view.seed, 0xc0311a7e00000000ULL + i);
    models_[i]->begin_run(child);
  }
}

void composite_fault_model::begin_step(const step_view& view,
                                       step_faults* out) {
  for (fault_model* m : models_) m->begin_step(view, out);
}

void composite_fault_model::filter_deliveries(
    const step_view& view, std::vector<delivery_candidate>* candidates) {
  for (fault_model* m : models_) m->filter_deliveries(view, candidates);
}

std::int64_t composite_fault_model::pending_recoveries() const {
  std::int64_t total = 0;
  for (const fault_model* m : models_) total += m->pending_recoveries();
  return total;
}

std::unique_ptr<fault_model> composite_fault_model::clone() const {
  std::vector<std::unique_ptr<fault_model>> owned;
  std::vector<fault_model*> raw;
  owned.reserve(models_.size());
  raw.reserve(models_.size());
  for (const fault_model* m : models_) {
    std::unique_ptr<fault_model> child = m->clone();
    if (child == nullptr) return nullptr;
    raw.push_back(child.get());
    owned.push_back(std::move(child));
  }
  auto out = std::make_unique<composite_fault_model>(std::move(raw));
  out->owned_ = std::move(owned);
  return out;
}

}  // namespace radiocast::fault
