// Fault injection: adversarial and stochastic perturbations of the radio
// model.
//
// The paper's model (§1) is ideal — synchronous, collision-iff-≥2, no
// failures. The radio literature's robustness folklore (Decay-style
// randomized protocols degrade gracefully; token protocols are brittle) is
// about what happens when that ideal breaks. This subsystem makes the break
// injectable and measurable: a `fault_model` plugs into
// `run_options::faults` and the simulator consults it at three points of
// each step:
//
//   1. `begin_step`  — before transmit decisions: the model reports node
//      crash-stops and edge up/down churn for this step; the simulator
//      applies them (crashed nodes neither transmit nor receive, down
//      edges carry no signal).
//   2. `filter_deliveries` — after collision resolution: the model sees
//      every would-be successful reception (exactly one transmitting
//      neighbor) and may suppress any subset. A suppressed listener hears
//      silence — indistinguishable from a collision, exactly like the ⊥
//      answers of the Theorem 2 jamming function (adversary/jamming.h).
//
// Faults only ever REMOVE deliveries; they never forge or corrupt
// messages. Silence is always a legal observation in the radio model, so
// every protocol remains well-defined under any fault model (it may merely
// fail to complete — which is the data).
//
// Determinism contract: `begin_run` receives the run seed and MUST reset
// all model state from it. The model draws randomness only from its own
// generator (salted independently of the per-node generators), so
// attaching a fault model never perturbs protocol coin flips: a model
// that suppresses nothing yields bit-identical `run_result`s to the
// fault-free run (guarded by tests/fault_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace radiocast::fault {

/// Run-level context handed to `begin_run`.
struct run_view {
  const graph* g = nullptr;
  std::uint64_t seed = 0;       ///< the run's root seed; models salt it
  std::int64_t max_steps = 0;   ///< the run's step cap
};

/// Per-step context. Snapshots are owned by the simulator and valid only
/// for the duration of the callback.
struct step_view {
  std::int64_t step = 0;
  const graph* g = nullptr;
  /// Per node: first step at which it became informed; −1 = uninformed.
  const std::vector<std::int64_t>* informed_at = nullptr;
  /// Per node: bit set once crash-stopped (includes crashes applied this
  /// step). Packed words (util/bitset.h) — probe with crashed->test(v).
  const util::bitset* crashed = nullptr;
};

/// A crashed node rejoining the computation (recovery models, recovery.h).
/// `amnesia` selects the restart semantics the simulator applies: true ⇒
/// protocol state is re-initialized via protocol_node::on_restart and the
/// node is evicted from the informed set (it must be re-informed); false ⇒
/// "retain" — state survived the outage and the node resumes where it was.
struct node_recovery {
  node_id node = -1;
  bool amnesia = false;
};

/// What a model wants to happen at the top of a step. The simulator owns
/// the buffers and applies the effects (idempotently: crashing a crashed
/// node or downing a down edge is a no-op; recovering a live node is a
/// no-op). Within one step crashes are applied before recoveries.
struct step_faults {
  std::vector<node_id> crashes;  ///< nodes that crash-stop now
  std::vector<node_recovery> recoveries;  ///< crashed nodes rejoining now
  std::vector<std::pair<node_id, node_id>> edges_down;  ///< signal cut
  std::vector<std::pair<node_id, node_id>> edges_up;    ///< signal restored

  void clear() {
    crashes.clear();
    recoveries.clear();
    edges_down.clear();
    edges_up.clear();
  }
};

/// One would-be successful reception of this step, offered to
/// `filter_deliveries` for suppression.
struct delivery_candidate {
  node_id listener = -1;
  node_id sender = -1;
  bool listener_informed = false;  ///< informed before this step's delivery
  bool suppressed = false;         ///< set by fault models to drop it
};

/// Interface of all fault models. Implementations: crash_model (crash.h),
/// loss_model (loss.h), jammer_model (jammer.h), churn_model (churn.h),
/// recovery_model (recovery.h), partition_model and frontier_cut_model
/// (partition.h), and composite_fault_model below.
class fault_model {
 public:
  virtual ~fault_model() = default;

  /// Short tag for tables and artifacts ("crash", "loss", "jam_greedy", …).
  virtual std::string name() const = 0;

  /// Resets ALL state from the run seed. Called once per run_broadcast,
  /// before any step; a model object is reusable across runs and trials.
  virtual void begin_run(const run_view& view) = 0;

  /// Called at the top of every step, before transmit decisions. Models
  /// append crash/churn effects to `out` (never cleared here — composites
  /// share one buffer).
  virtual void begin_step(const step_view& view, step_faults* out) {
    (void)view;
    (void)out;
  }

  /// Called once per step iff at least one reception would succeed. Models
  /// mark candidates `suppressed`; already-suppressed candidates must be
  /// left alone (and models should not spend randomness on them, so that
  /// composition order is the documented order of effects).
  virtual void filter_deliveries(const step_view& view,
                                 std::vector<delivery_candidate>* candidates) {
    (void)view;
    (void)candidates;
  }

  /// Crashed nodes this model still intends to recover (recovery models
  /// override this with their current down count). The simulator refuses
  /// to declare a run complete while recoveries are pending: a node that
  /// will rejoin — possibly with amnesia — may still need the message, so
  /// "every surviving node is informed" is only meaningful once the roster
  /// has settled. Models without recovery semantics return 0.
  virtual std::int64_t pending_recoveries() const { return 0; }

  /// A fresh instance with the same CONFIGURATION and no run state, for
  /// trial-parallel execution: parallel_run_trials (src/exec/) hands every
  /// worker its own clone so no model state is shared across threads.
  /// Because `begin_run` derives everything from the trial seed, a clone
  /// produces bit-identical fault schedules to the original. The default
  /// returns nullptr ("not cloneable"); such a model can only run serial
  /// batches. All built-in models override this.
  virtual std::unique_ptr<fault_model> clone() const { return nullptr; }
};

/// Deterministic seed derivation: every model mixes the run seed with its
/// own salt so that stacked models draw independent streams and none of
/// them touches the per-node protocol generators.
std::uint64_t mix_seed(std::uint64_t run_seed, std::uint64_t salt);

/// Applies several fault models in order: crashes and churn accumulate,
/// delivery filters chain (later models see — and must respect — earlier
/// suppressions). Children get independently derived seeds, so two
/// instances of the same model type stay decorrelated. Does not own the
/// children.
class composite_fault_model final : public fault_model {
 public:
  explicit composite_fault_model(std::vector<fault_model*> models);

  std::string name() const override;
  void begin_run(const run_view& view) override;
  void begin_step(const step_view& view, step_faults* out) override;
  void filter_deliveries(
      const step_view& view,
      std::vector<delivery_candidate>* candidates) override;
  /// Sum over children: any child still owing recoveries holds completion.
  std::int64_t pending_recoveries() const override;
  /// Deep clone: every child is cloned too (and owned by the clone, unlike
  /// the original's borrowed children). Null if any child is not cloneable.
  std::unique_ptr<fault_model> clone() const override;

 private:
  std::vector<fault_model*> models_;
  /// Set only on clones: storage keeping the cloned children alive.
  std::vector<std::unique_ptr<fault_model>> owned_;
};

}  // namespace radiocast::fault
