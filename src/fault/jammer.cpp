#include "fault/jammer.h"

#include <algorithm>

#include "util/assert.h"

namespace radiocast::fault {

namespace {
constexpr std::uint64_t kJamSalt = 0x3a77'ab1e'0b5c'0003ULL;
}  // namespace

jammer_model::jammer_model(jammer_options opts) : opts_(opts) {
  RC_REQUIRE_MSG(opts_.budget >= 0, "jammer budget must be non-negative");
}

std::string jammer_model::name() const {
  return opts_.strategy == jam_strategy::oblivious_random ? "jam_oblivious"
                                                          : "jam_greedy";
}

void jammer_model::begin_run(const run_view& view) {
  n_ = view.g->node_count();
  gen_ = rng(mix_seed(view.seed, kJamSalt));
  targets_.clear();
  jammed_count_ = 0;
}

void jammer_model::begin_step(const step_view& view, step_faults* out) {
  (void)view;
  (void)out;
  if (opts_.strategy != jam_strategy::oblivious_random || opts_.budget == 0) {
    return;
  }
  // Oblivious: the target list is drawn before anyone transmits, every
  // step, so it is a function of the seed and the step count only (picks
  // may repeat; the budget is an upper bound on silenced listeners).
  targets_.clear();
  for (int i = 0; i < opts_.budget; ++i) {
    targets_.push_back(
        static_cast<node_id>(gen_.below(static_cast<std::uint64_t>(n_))));
  }
}

void jammer_model::filter_deliveries(
    const step_view& view, std::vector<delivery_candidate>* candidates) {
  (void)view;
  if (opts_.budget == 0) return;

  if (opts_.strategy == jam_strategy::oblivious_random) {
    for (delivery_candidate& c : *candidates) {
      if (c.suppressed) continue;
      if (std::find(targets_.begin(), targets_.end(), c.listener) !=
          targets_.end()) {
        c.suppressed = true;
        ++jammed_count_;
      }
    }
    return;
  }

  // Greedy frontier: silence the receptions that would inform new nodes
  // first, then spend any leftover budget on control traffic to informed
  // listeners. Candidate order is the simulator's deterministic
  // resolution order, so the whole schedule is reproducible.
  int remaining = opts_.budget;
  for (const bool frontier_pass : {true, false}) {
    if (remaining == 0) break;
    for (delivery_candidate& c : *candidates) {
      if (remaining == 0) break;
      if (c.suppressed) continue;
      if (c.listener_informed == frontier_pass) continue;
      c.suppressed = true;
      ++jammed_count_;
      --remaining;
    }
  }
}

}  // namespace radiocast::fault
