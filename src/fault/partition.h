// Non-connectivity-preserving dynamics: partitions and the adaptive
// frontier-cut adversary.
//
// churn_model (churn.h) deliberately exempts a spanning tree so broadcast
// stays solvable; the two models here deliberately break that guarantee —
// they are the reason run_result carries `reachable_nodes` /
// `informed_reachable` and a `run_outcome`, and why timeouts split into
// "genuinely stuck" (progress was possible but not made) vs "unreachable"
// (no path existed to the remaining uninformed nodes).
//
// partition_model — every edge is eligible for churn (bit 0 of the edge
// state), and on top of that a periodic partition WINDOW (bit 1) cuts a
// random BFS-ball "island" of ≈ island_fraction·n nodes off from the rest
// of the graph for `duration` steps, then restores the cut. An edge
// carries no signal while either bit is set; up/down events are emitted
// only on effective transitions, so stacking a window on an already
// churned-down edge is silent, exactly like the simulator's idempotent
// application.
//
// frontier_cut_model — the adversarial dual of the PR 2 greedy jammer:
// where the jammer silences deliveries at the informed-set boundary, this
// adversary CRASHES the boundary itself. Each step it spends a crash
// budget on live informed nodes that still have a live uninformed
// neighbor — the only nodes whose transmissions can grow the broadcast —
// in ascending id order. It is deterministic (no randomness: the execution
// trace is its schedule), and with budget ≥ 1 on a path it beheads the
// frontier every step, driving the run to `unreachable` or `source_lost`.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/fault_model.h"

namespace radiocast::fault {

struct partition_options {
  /// Per edge, per step, probability in [0, 1] of flipping its churn bit.
  /// Unlike churn_model, EVERY edge is eligible — including bridges.
  double toggle_probability = 0.0;

  /// Partition windows: every `period` steps (at steps period, 2·period, …)
  /// a random island is cut off for `duration` steps. 0 disables windows.
  std::int64_t period = 0;
  /// Steps each window lasts; must be < period when windows are enabled.
  std::int64_t duration = 0;
  /// Target island size as a fraction of n in (0, 1); the island is a BFS
  /// ball grown from a random center to ⌈fraction·n⌉ nodes.
  double island_fraction = 0.25;
};

class partition_model final : public fault_model {
 public:
  explicit partition_model(partition_options opts);

  std::string name() const override { return "partition"; }
  void begin_run(const run_view& view) override;
  void begin_step(const step_view& view, step_faults* out) override;

  /// Edges currently carrying no signal (either bit set).
  std::int64_t down_count() const { return down_count_; }
  /// Partition windows opened so far in the current run.
  std::int64_t windows_opened() const { return windows_opened_; }

  std::unique_ptr<fault_model> clone() const override {
    return std::make_unique<partition_model>(opts_);
  }

 private:
  void set_window_bit(std::size_t edge, bool on, step_faults* out);

  partition_options opts_;
  rng gen_{0};
  node_id n_ = 0;
  std::vector<std::pair<node_id, node_id>> edges_;  // all edges, u < v
  /// Per edge: bit 0 = churned down, bit 1 = cut by the active window.
  std::vector<std::uint8_t> state_;
  std::vector<std::size_t> window_cut_;  // edge indices cut by the window
  std::vector<std::uint8_t> island_;     // scratch: node membership
  std::int64_t window_end_ = -1;         // first step after the window
  std::int64_t down_count_ = 0;
  std::int64_t windows_opened_ = 0;
};

struct frontier_cut_options {
  /// Max frontier nodes crashed per step. 0 ⇒ no-op (bit-identical to the
  /// fault-free run, guarded by tests).
  int budget_per_step = 0;
  /// Total crash budget across the run; −1 = unlimited.
  std::int64_t total_budget = -1;
  /// Never crash node 0 (default true: a beheaded source is trivially
  /// fatal; the crashed-source regression schedules it via crash_model).
  bool spare_source = true;
};

class frontier_cut_model final : public fault_model {
 public:
  explicit frontier_cut_model(frontier_cut_options opts);

  std::string name() const override { return "frontier_cut"; }
  void begin_run(const run_view& view) override;
  void begin_step(const step_view& view, step_faults* out) override;

  /// Frontier nodes crashed so far in the current run.
  std::int64_t crashed_count() const { return crashed_count_; }

  std::unique_ptr<fault_model> clone() const override {
    return std::make_unique<frontier_cut_model>(opts_);
  }

 private:
  frontier_cut_options opts_;
  node_id n_ = 0;
  std::vector<std::uint8_t> down_;  // this model's own crash record
  std::int64_t spent_ = 0;
  std::int64_t crashed_count_ = 0;
};

}  // namespace radiocast::fault
