#include "fault/churn.h"

#include <algorithm>
#include <queue>

#include "util/assert.h"

namespace radiocast::fault {

namespace {
constexpr std::uint64_t kChurnSalt = 0xc4e2'4000'edfe'0004ULL;
}  // namespace

churn_model::churn_model(churn_options opts) : opts_(opts) {
  RC_REQUIRE_MSG(
      opts_.toggle_probability >= 0.0 && opts_.toggle_probability <= 1.0,
      "toggle_probability must lie in [0, 1]");
}

void churn_model::begin_run(const run_view& view) {
  const graph& g = *view.g;
  RC_REQUIRE_MSG(!g.is_directed(),
                 "churn_model requires an undirected graph");
  const node_id n = g.node_count();

  // BFS spanning tree from the source; its edges are churn-exempt so the
  // graph stays connected every step.
  std::vector<node_id> parent(static_cast<std::size_t>(n), -1);
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
  std::queue<node_id> frontier;
  seen[0] = 1;
  frontier.push(0);
  while (!frontier.empty()) {
    const node_id u = frontier.front();
    frontier.pop();
    for (const node_id v : g.out_neighbors(u)) {
      if (seen[static_cast<std::size_t>(v)] != 0) continue;
      seen[static_cast<std::size_t>(v)] = 1;
      parent[static_cast<std::size_t>(v)] = u;
      frontier.push(v);
    }
  }
  for (node_id v = 0; v < n; ++v) {
    RC_REQUIRE_MSG(seen[static_cast<std::size_t>(v)] != 0,
                   "churn_model requires a connected graph");
  }

  auto is_tree_edge = [&](node_id u, node_id v) {
    return parent[static_cast<std::size_t>(u)] == v ||
           parent[static_cast<std::size_t>(v)] == u;
  };

  edges_.clear();
  for (node_id u = 0; u < n; ++u) {
    for (const node_id v : g.out_neighbors(u)) {
      if (u >= v) continue;  // each undirected edge once, normalized u < v
      if (is_tree_edge(u, v)) continue;
      edges_.emplace_back(u, v);
    }
  }
  std::sort(edges_.begin(), edges_.end());  // schedule order fixed by (u,v)

  gen_ = rng(mix_seed(view.seed, kChurnSalt));
  down_.assign(edges_.size(), 0);
  down_count_ = 0;
  toggle_count_ = 0;
}

void churn_model::begin_step(const step_view& view, step_faults* out) {
  (void)view;
  if (opts_.toggle_probability <= 0.0) return;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (!gen_.bernoulli(opts_.toggle_probability)) continue;
    auto& state = down_[i];
    state ^= 1;
    ++toggle_count_;
    if (state != 0) {
      ++down_count_;
      out->edges_down.push_back(edges_[i]);
    } else {
      --down_count_;
      out->edges_up.push_back(edges_[i]);
    }
  }
}

}  // namespace radiocast::fault
