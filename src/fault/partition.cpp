#include "fault/partition.h"

#include <algorithm>
#include <queue>

#include "util/assert.h"

namespace radiocast::fault {

namespace {
constexpr std::uint64_t kPartitionSalt = 0x9a57'170e'00d5'000bULL;

constexpr std::uint8_t kChurnBit = 1;
constexpr std::uint8_t kWindowBit = 2;
}  // namespace

partition_model::partition_model(partition_options opts) : opts_(opts) {
  RC_REQUIRE_MSG(
      opts_.toggle_probability >= 0.0 && opts_.toggle_probability <= 1.0,
      "toggle_probability must lie in [0, 1]");
  RC_REQUIRE_MSG(opts_.period >= 0 && opts_.duration >= 0,
                 "period/duration must be non-negative");
  if (opts_.period > 0) {
    RC_REQUIRE_MSG(opts_.duration > 0 && opts_.duration < opts_.period,
                   "windows need 0 < duration < period");
    RC_REQUIRE_MSG(
        opts_.island_fraction > 0.0 && opts_.island_fraction < 1.0,
        "island_fraction must lie in (0, 1)");
  }
}

void partition_model::begin_run(const run_view& view) {
  const graph& g = *view.g;
  RC_REQUIRE_MSG(!g.is_directed(),
                 "partition_model requires an undirected graph");
  n_ = g.node_count();
  edges_.clear();
  for (node_id u = 0; u < n_; ++u) {
    for (const node_id v : g.out_neighbors(u)) {
      if (u < v) edges_.emplace_back(u, v);
    }
  }
  std::sort(edges_.begin(), edges_.end());  // schedule order fixed by (u,v)
  gen_ = rng(mix_seed(view.seed, kPartitionSalt));
  state_.assign(edges_.size(), 0);
  window_cut_.clear();
  island_.assign(static_cast<std::size_t>(n_), 0);
  window_end_ = -1;
  down_count_ = 0;
  windows_opened_ = 0;
}

void partition_model::set_window_bit(std::size_t edge, bool on,
                                     step_faults* out) {
  auto& s = state_[edge];
  const bool was_down = s != 0;
  if (on) {
    s |= kWindowBit;
  } else {
    s &= static_cast<std::uint8_t>(~kWindowBit);
  }
  const bool is_down = s != 0;
  if (was_down == is_down) return;  // masked by the churn bit: silent
  if (is_down) {
    ++down_count_;
    out->edges_down.push_back(edges_[edge]);
  } else {
    --down_count_;
    out->edges_up.push_back(edges_[edge]);
  }
}

void partition_model::begin_step(const step_view& view, step_faults* out) {
  // 1. Close an expired window before anything else, so a back-to-back
  //    window sees a clean slate.
  if (window_end_ >= 0 && view.step >= window_end_) {
    for (const std::size_t e : window_cut_) set_window_bit(e, false, out);
    window_cut_.clear();
    window_end_ = -1;
  }

  // 2. Per-edge churn, every edge eligible — bridges included.
  if (opts_.toggle_probability > 0.0) {
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      if (!gen_.bernoulli(opts_.toggle_probability)) continue;
      auto& s = state_[i];
      const bool was_down = s != 0;
      s ^= kChurnBit;
      const bool is_down = s != 0;
      if (was_down == is_down) continue;  // masked by an active window
      if (is_down) {
        ++down_count_;
        out->edges_down.push_back(edges_[i]);
      } else {
        --down_count_;
        out->edges_up.push_back(edges_[i]);
      }
    }
  }

  // 3. Open a new window: grow a BFS ball of ⌈fraction·n⌉ nodes from a
  //    random center and cut every crossing edge.
  if (opts_.period > 0 && view.step > 0 && view.step % opts_.period == 0) {
    const auto target = static_cast<node_id>(std::min<double>(
        static_cast<double>(n_ - 1),
        std::max(1.0, opts_.island_fraction * static_cast<double>(n_))));
    const auto center = static_cast<node_id>(
        gen_.below(static_cast<std::uint64_t>(n_)));
    std::fill(island_.begin(), island_.end(), 0);
    std::queue<node_id> frontier;
    island_[static_cast<std::size_t>(center)] = 1;
    frontier.push(center);
    node_id taken = 1;
    while (!frontier.empty() && taken < target) {
      const node_id u = frontier.front();
      frontier.pop();
      for (const node_id v : view.g->out_neighbors(u)) {
        if (taken >= target) break;
        auto& in = island_[static_cast<std::size_t>(v)];
        if (in != 0) continue;
        in = 1;
        ++taken;
        frontier.push(v);
      }
    }
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      const auto [u, v] = edges_[i];
      if (island_[static_cast<std::size_t>(u)] ==
          island_[static_cast<std::size_t>(v)]) {
        continue;
      }
      window_cut_.push_back(i);
      set_window_bit(i, true, out);
    }
    window_end_ = view.step + opts_.duration;
    ++windows_opened_;
  }
}

frontier_cut_model::frontier_cut_model(frontier_cut_options opts)
    : opts_(opts) {
  RC_REQUIRE_MSG(opts_.budget_per_step >= 0,
                 "budget_per_step must be non-negative");
  RC_REQUIRE_MSG(opts_.total_budget >= -1,
                 "total_budget must be ≥ 0, or −1 for unlimited");
}

void frontier_cut_model::begin_run(const run_view& view) {
  n_ = view.g->node_count();
  down_.assign(static_cast<std::size_t>(n_), 0);
  spent_ = 0;
  crashed_count_ = 0;
}

void frontier_cut_model::begin_step(const step_view& view, step_faults* out) {
  if (opts_.budget_per_step <= 0) return;
  if (opts_.total_budget >= 0 && spent_ >= opts_.total_budget) return;
  // A node is "down" if anyone crashed it — this model or an earlier one
  // in a composite (view.crashed) — or we crashed it in a prior step.
  auto is_down = [&](node_id v) {
    return down_[static_cast<std::size_t>(v)] != 0 ||
           view.crashed->test(static_cast<std::size_t>(v));
  };
  auto is_informed = [&](node_id v) {
    return (*view.informed_at)[static_cast<std::size_t>(v)] >= 0;
  };
  int cut = 0;
  const node_id first = opts_.spare_source ? 1 : 0;
  for (node_id v = first; v < n_ && cut < opts_.budget_per_step; ++v) {
    if (opts_.total_budget >= 0 && spent_ >= opts_.total_budget) break;
    if (is_down(v) || !is_informed(v)) continue;
    // Frontier membership: some live neighbor still needs the message.
    bool on_frontier = false;
    for (const node_id u : view.g->out_neighbors(v)) {
      if (!is_down(u) && !is_informed(u)) {
        on_frontier = true;
        break;
      }
    }
    if (!on_frontier) continue;
    down_[static_cast<std::size_t>(v)] = 1;
    ++crashed_count_;
    ++spent_;
    ++cut;
    out->crashes.push_back(v);
  }
}

}  // namespace radiocast::fault
