// Crash-recovery node failures: crash-stop with a way back.
//
// Extends crash_model's two triggers (a fixed (node, step) schedule and a
// per-step crash probability) with rejoin semantics: a crashed node comes
// back after a deterministic downtime and/or by a per-step geometric
// recovery probability, in one of two modes:
//
//   * retain  — volatile state survived the outage (battery brown-out,
//     scheduler stall): the node resumes exactly where it was. An informed
//     node rejoins the frontier; completion accounting simply un-exempts
//     it.
//   * amnesia — the reboot lost all volatile state: the simulator calls
//     protocol_node::on_restart (sim/protocol.h), evicts the node from the
//     informed/awake sets, and the node must be re-informed by a fresh
//     delivery before it participates again.
//
// Recovered nodes are eligible to crash again, so a node may cycle
// down/up many times in one run; `run_result::crashed_nodes` counts crash
// EVENTS (it can exceed n), `run_result::recoveries` counts rejoins.
//
// Completion interacts with recovery through fault_model::
// pending_recoveries(): while any node is down but destined to return, the
// simulator refuses to declare the broadcast complete — a returning
// amnesiac still needs the message, so the "every surviving node informed"
// predicate only becomes meaningful once the roster settles. With neither
// `downtime` nor `recovery_probability` set the model degenerates to plain
// crash-stop (pending_recoveries() = 0, nobody returns).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/fault_model.h"

namespace radiocast::fault {

/// What a rejoining node remembers. See the header comment.
enum class recovery_mode { retain, amnesia };

struct recovery_options {
  /// Deterministic crashes: node v crashes at the start of step s.
  std::vector<std::pair<node_id, std::int64_t>> schedule;
  /// Per live node, per step, independent crash probability in [0, 1].
  double crash_probability = 0.0;
  /// Never crash node 0. Defaults to false: with recovery enabled a source
  /// outage is survivable (the amnesia source still knows its own message),
  /// which is exactly the regime the resilience bench sweeps.
  bool spare_source = false;

  recovery_mode mode = recovery_mode::retain;
  /// Deterministic rejoin: a node crashed at step s recovers at the start
  /// of step s + downtime (0 = disabled; must be ≥ 1 when set — a node is
  /// down for at least the step it crashed in).
  std::int64_t downtime = 0;
  /// Geometric rejoin: each step after the crash step, every down node
  /// independently recovers with this probability in [0, 1]. Combines with
  /// `downtime` (whichever fires first). Both zero ⇒ crashes are permanent.
  double recovery_probability = 0.0;
};

class recovery_model final : public fault_model {
 public:
  explicit recovery_model(recovery_options opts);

  std::string name() const override;
  void begin_run(const run_view& view) override;
  void begin_step(const step_view& view, step_faults* out) override;
  std::int64_t pending_recoveries() const override;

  /// Crash events so far in the current run (a node may crash repeatedly).
  std::int64_t crashed_count() const { return crashed_count_; }
  /// Rejoin events so far in the current run.
  std::int64_t recovered_count() const { return recovered_count_; }

  std::unique_ptr<fault_model> clone() const override {
    return std::make_unique<recovery_model>(opts_);
  }

 private:
  bool recovery_enabled() const {
    return opts_.downtime > 0 || opts_.recovery_probability > 0.0;
  }

  recovery_options opts_;
  rng gen_{0};
  node_id n_ = 0;
  std::vector<std::uint8_t> down_;        // this model's own crash record
  std::vector<std::int64_t> down_since_;  // step of the last crash, per node
  std::size_t schedule_cursor_ = 0;       // into sorted schedule_
  std::vector<std::pair<std::int64_t, node_id>> schedule_;  // (step, node)
  std::int64_t down_count_ = 0;
  std::int64_t crashed_count_ = 0;
  std::int64_t recovered_count_ = 0;
};

}  // namespace radiocast::fault
