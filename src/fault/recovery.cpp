#include "fault/recovery.h"

#include <algorithm>

#include "util/assert.h"

namespace radiocast::fault {

namespace {
constexpr std::uint64_t kRecoverySalt = 0x4ec0'0e4a'0a11'0007ULL;
}  // namespace

recovery_model::recovery_model(recovery_options opts)
    : opts_(std::move(opts)) {
  RC_REQUIRE_MSG(
      opts_.crash_probability >= 0.0 && opts_.crash_probability <= 1.0,
      "crash_probability must lie in [0, 1]");
  RC_REQUIRE_MSG(opts_.recovery_probability >= 0.0 &&
                     opts_.recovery_probability <= 1.0,
                 "recovery_probability must lie in [0, 1]");
  RC_REQUIRE_MSG(opts_.downtime >= 0,
                 "downtime must be ≥ 1 steps (or 0 to disable)");
  for (const auto& [node, step] : opts_.schedule) {
    RC_REQUIRE_MSG(node >= 0, "scheduled crash node must be non-negative");
    RC_REQUIRE_MSG(step >= 0, "scheduled crash step must be non-negative");
  }
}

std::string recovery_model::name() const {
  return opts_.mode == recovery_mode::amnesia ? "recovery_amnesia"
                                              : "recovery_retain";
}

void recovery_model::begin_run(const run_view& view) {
  n_ = view.g->node_count();
  gen_ = rng(mix_seed(view.seed, kRecoverySalt));
  down_.assign(static_cast<std::size_t>(n_), 0);
  down_since_.assign(static_cast<std::size_t>(n_), -1);
  down_count_ = 0;
  crashed_count_ = 0;
  recovered_count_ = 0;
  schedule_cursor_ = 0;
  schedule_.clear();
  schedule_.reserve(opts_.schedule.size());
  for (const auto& [node, step] : opts_.schedule) {
    RC_REQUIRE_MSG(node < n_, "scheduled crash node out of range");
    schedule_.emplace_back(step, node);
  }
  std::sort(schedule_.begin(), schedule_.end());
}

void recovery_model::begin_step(const step_view& view, step_faults* out) {
  auto crash = [&](node_id v) {
    auto& d = down_[static_cast<std::size_t>(v)];
    if (d != 0) return;
    d = 1;
    down_since_[static_cast<std::size_t>(v)] = view.step;
    ++down_count_;
    ++crashed_count_;
    out->crashes.push_back(v);
  };

  while (schedule_cursor_ < schedule_.size() &&
         schedule_[schedule_cursor_].first == view.step) {
    crash(schedule_[schedule_cursor_].second);
    ++schedule_cursor_;
  }

  if (opts_.crash_probability > 0.0) {
    // Fixed node order keeps the draw sequence — and thus the schedule —
    // a pure function of the seed and the model's own up/down history.
    const node_id first = opts_.spare_source ? 1 : 0;
    for (node_id v = first; v < n_; ++v) {
      if (down_[static_cast<std::size_t>(v)] != 0) continue;
      if (gen_.bernoulli(opts_.crash_probability)) crash(v);
    }
  }

  if (!recovery_enabled() || down_count_ == 0) return;
  const bool amnesia = opts_.mode == recovery_mode::amnesia;
  for (node_id v = 0; v < n_; ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (down_[i] == 0) continue;
    if (down_since_[i] == view.step) continue;  // down ≥ the crash step
    bool up = opts_.downtime > 0 &&
              view.step - down_since_[i] >= opts_.downtime;
    if (!up && opts_.recovery_probability > 0.0) {
      // Geometric: one draw per down node per step, in fixed node order.
      up = gen_.bernoulli(opts_.recovery_probability);
    }
    if (!up) continue;
    down_[i] = 0;
    down_since_[i] = -1;
    --down_count_;
    ++recovered_count_;
    out->recoveries.push_back({v, amnesia});
  }
}

std::int64_t recovery_model::pending_recoveries() const {
  return recovery_enabled() ? down_count_ : 0;
}

}  // namespace radiocast::fault
