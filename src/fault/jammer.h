// Budget-limited adversarial jammer.
//
// Each step the jammer may silence the reception of up to `budget`
// listeners: a jammed listener hears silence even if exactly one neighbor
// transmitted. This is the empirical cousin of the Theorem 2 jamming
// function (adversary/jamming.h): there the adversary answers ⊥ to keep a
// combinatorial invariant alive inside the lower-bound construction; here
// it spends a per-step budget against a real protocol execution, and the
// measurement is how much completion time the budget buys.
//
// Strategies:
//   * oblivious_random — before seeing who transmits, pick `budget` nodes
//     uniformly at random each step and silence whatever they would have
//     received. Models environmental interference; a function of the seed
//     and the step count only.
//   * greedy_frontier  — after collision resolution, spend the budget on
//     actual successful receptions, uninformed listeners first (the
//     informed frontier — the deliveries that would grow the broadcast),
//     then informed ones (which carry protocol control traffic: Echo
//     replies, DFS token passes). Deterministic given the execution; the
//     strongest delay adversary at this budget granularity.
#pragma once

#include "fault/fault_model.h"

namespace radiocast::fault {

enum class jam_strategy { oblivious_random, greedy_frontier };

struct jammer_options {
  /// Max listeners silenced per step. 0 ⇒ the jammer is a no-op and the
  /// run is bit-identical to the fault-free one (guarded by tests).
  int budget = 0;
  jam_strategy strategy = jam_strategy::oblivious_random;
};

class jammer_model final : public fault_model {
 public:
  explicit jammer_model(jammer_options opts);

  std::string name() const override;
  void begin_run(const run_view& view) override;
  void begin_step(const step_view& view, step_faults* out) override;
  void filter_deliveries(
      const step_view& view,
      std::vector<delivery_candidate>* candidates) override;

  /// Deliveries this model has silenced in the current run.
  std::int64_t jammed_count() const { return jammed_count_; }

  std::unique_ptr<fault_model> clone() const override {
    return std::make_unique<jammer_model>(opts_);
  }

 private:
  jammer_options opts_;
  rng gen_{0};
  node_id n_ = 0;
  std::vector<node_id> targets_;  // oblivious picks for the current step
  std::int64_t jammed_count_ = 0;
};

}  // namespace radiocast::fault
