#include "fault/crash.h"

#include <algorithm>

#include "util/assert.h"

namespace radiocast::fault {

namespace {
constexpr std::uint64_t kCrashSalt = 0xc4a5'11fa'0170'0001ULL;
}  // namespace

crash_model::crash_model(crash_options opts) : opts_(std::move(opts)) {
  RC_REQUIRE_MSG(
      opts_.crash_probability >= 0.0 && opts_.crash_probability <= 1.0,
      "crash_probability must lie in [0, 1]");
  for (const auto& [node, step] : opts_.schedule) {
    RC_REQUIRE_MSG(node >= 0, "scheduled crash node must be non-negative");
    RC_REQUIRE_MSG(step >= 0, "scheduled crash step must be non-negative");
  }
}

void crash_model::begin_run(const run_view& view) {
  n_ = view.g->node_count();
  gen_ = rng(mix_seed(view.seed, kCrashSalt));
  down_.assign(static_cast<std::size_t>(n_), 0);
  crashed_count_ = 0;
  schedule_cursor_ = 0;
  schedule_.clear();
  schedule_.reserve(opts_.schedule.size());
  for (const auto& [node, step] : opts_.schedule) {
    RC_REQUIRE_MSG(node < n_, "scheduled crash node out of range");
    schedule_.emplace_back(step, node);
  }
  std::sort(schedule_.begin(), schedule_.end());
}

void crash_model::begin_step(const step_view& view, step_faults* out) {
  auto crash = [&](node_id v) {
    auto& d = down_[static_cast<std::size_t>(v)];
    if (d != 0) return;
    d = 1;
    ++crashed_count_;
    out->crashes.push_back(v);
  };

  while (schedule_cursor_ < schedule_.size() &&
         schedule_[schedule_cursor_].first == view.step) {
    crash(schedule_[schedule_cursor_].second);
    ++schedule_cursor_;
  }

  if (opts_.crash_probability > 0.0) {
    // Fixed node order keeps the draw sequence — and thus the schedule —
    // a pure function of the seed and the model's own crash history.
    const node_id first = opts_.spare_source ? 1 : 0;
    for (node_id v = first; v < n_; ++v) {
      if (down_[static_cast<std::size_t>(v)] != 0) continue;
      if (gen_.bernoulli(opts_.crash_probability)) crash(v);
    }
  }
}

}  // namespace radiocast::fault
