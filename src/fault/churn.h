// Dynamic-topology edge churn.
//
// Models a mobile/ad hoc deployment whose links flap: each step, every
// eligible edge independently toggles between up and down with probability
// `toggle_probability`. A down edge carries no signal in either direction
// (it neither delivers nor contributes to collisions).
//
// Solvability guarantee: a BFS spanning tree rooted at the source is
// computed once per run and its edges are never churned, so the graph —
// and in particular the informed region — stays connected at every step
// and broadcast remains solvable no matter how hard the non-tree edges
// flap. (Completion time still suffers: the protocols do not know the
// tree, and the flapping edges keep changing which transmissions collide.)
//
// Requires an undirected graph with every node reachable from the source.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/fault_model.h"

namespace radiocast::fault {

struct churn_options {
  /// Per eligible (non-spanning-tree) edge, per step, probability in
  /// [0, 1] of flipping its up/down state.
  double toggle_probability = 0.0;
};

class churn_model final : public fault_model {
 public:
  explicit churn_model(churn_options opts);

  std::string name() const override { return "churn"; }
  void begin_run(const run_view& view) override;
  void begin_step(const step_view& view, step_faults* out) override;

  /// Edges the schedule may churn (non-tree edges of the current run).
  std::size_t eligible_edge_count() const { return edges_.size(); }
  /// Eligible edges currently down.
  std::int64_t down_count() const { return down_count_; }
  /// Up/down transitions emitted so far in the current run.
  std::int64_t toggle_count() const { return toggle_count_; }

  std::unique_ptr<fault_model> clone() const override {
    return std::make_unique<churn_model>(opts_);
  }

 private:
  churn_options opts_;
  rng gen_{0};
  std::vector<std::pair<node_id, node_id>> edges_;  // eligible, u < v
  std::vector<std::uint8_t> down_;                  // parallel to edges_
  std::int64_t down_count_ = 0;
  std::int64_t toggle_count_ = 0;
};

}  // namespace radiocast::fault
