#include "exec/thread_pool.h"

#include <cstdlib>
#include <string>

#include "util/assert.h"

namespace radiocast::exec {

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int env_threads() {
  const char* env = std::getenv("RADIOCAST_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const std::string value(env);
  if (value == "auto") return hardware_threads();
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || parsed < 0) return 1;
  if (parsed == 0) return hardware_threads();
  return static_cast<int>(parsed);
}

int resolve_threads(int requested) {
  RC_REQUIRE_MSG(requested >= 0,
                 "thread count must be >= 0 (0 = RADIOCAST_THREADS default)");
  return requested > 0 ? requested : env_threads();
}

thread_pool::thread_pool(int threads) {
  RC_REQUIRE(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void thread_pool::submit(std::function<void()> task) {
  RC_REQUIRE(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    RC_CHECK_MSG(!stop_, "submit on a stopping thread_pool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void thread_pool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace radiocast::exec
