// Trial-level parallel execution with bit-identical determinism.
//
// run_trials (src/sim/simulator.h) executes its seeded trials strictly
// serially; every bench and statistical experiment is bottlenecked on one
// core. But the trials are already independent by construction: trial t
// runs run_broadcast with seed base_seed + t, per-node generators split
// from that seed, and fault models reset all state from it in begin_run.
// So the batch parallelizes by SEED SHARDING:
//
//   * the seed range [base_seed, base_seed + trials) is cut into
//     contiguous shards, a few per worker for load balance;
//   * each shard runs the unmodified serial run_trials on its sub-range,
//     with a PRIVATE metrics_registry, a PRIVATE span_profiler, and a
//     PRIVATE fault_model clone — workers share only the const graph and
//     protocol factory;
//   * shards are folded back IN SEED ORDER, and the fold STREAMS: the
//     calling thread retires each next-in-order shard as it finishes —
//     firing trial_options::hooks.on_done, merging its registry
//     (metrics_registry::merge) and span tree (span_profiler::merge) into
//     the caller's, then releasing the shard's memory — while later shards
//     are still running. With hooks.discard_records, peak memory is
//     bounded by in-flight shards, not the whole batch.
//
// trial_options::shard_size pins the shard boundaries (campaigns need
// artifact files that are a function of the manifest, not the host's core
// count); 0 keeps the auto split, a few shards per worker.
//
// Determinism contract (tested by tests/parallel_test.cpp, run under TSan
// by scripts/ci.sh): for every thread count, the resulting trial_set and
// the merged metrics registry are bit-identical to what serial run_trials
// produces — the only nondeterministic fields are the wall-clock ones
// (trial_record::wall_ms, span timings). See docs/PARALLELISM.md.
#pragma once

#include "sim/simulator.h"

namespace radiocast {

/// As run_trials, but sharded over exec::resolve_threads(opts.threads)
/// workers. A resolved count ≤ 1 (the default when RADIOCAST_THREADS is
/// unset) calls the serial run_trials directly — byte-for-byte the
/// existing path — UNLESS opts.hooks or opts.shard_size demand shard
/// structure, in which case the sharded path runs even on one worker (and
/// still produces bit-identical records). With opts.faults set, the model
/// must support clone() (all built-in models do); a non-cloneable model is
/// a checked error.
trial_set parallel_run_trials(const graph& g, const protocol& proto,
                              const trial_options& opts);

}  // namespace radiocast
