// Intra-step sharding hook for the SoA engine (sim/soa_engine.h).
//
// parallel_trials.cpp shards ACROSS trials; this helper shards WITHIN one
// simulator step: a phase's work list is cut into contiguous shards, each
// shard runs on a pool worker (shard 0 on the calling thread — with two
// resolved threads exactly one task crosses the queue), and the call blocks
// until every shard has finished. The caller then merges per-shard results
// IN SHARD ORDER, which is what keeps sharded steps bit-identical to serial
// ones: contiguous shards of an ascending work list, merged in shard order,
// reproduce the serial visit order exactly.
//
// thread_pool::wait_idle provides the synchronization edge: every write a
// shard body makes happens-before the merge loop on the calling thread.
#pragma once

#include <functional>

#include "exec/thread_pool.h"

namespace radiocast::exec {

/// Runs body(shard) for shard = 0 … shards−1: shard 0 inline on the calling
/// thread, the rest on the pool. Blocks until all shards complete. Bodies
/// must not throw (same contract as thread_pool::submit) and must write
/// only shard-private or per-element-disjoint state.
void run_shards(thread_pool& pool, int shards,
                const std::function<void(int)>& body);

}  // namespace radiocast::exec
