// Dependency-free fixed-size thread pool for trial-level parallelism.
//
// The simulator itself stays single-threaded by design (see
// src/obs/metrics.h); what parallelizes is the TRIAL loop — independent
// seeded run_broadcast calls that share nothing but the (const) graph and
// protocol factory. This pool is the minimal substrate for that:
//
//   * a fixed set of workers created up front (no growth, no work stealing);
//   * submit() enqueues a task, wait_idle() blocks until every submitted
//     task has finished;
//   * tasks must not throw — callers that can fail wrap their body in
//     try/catch and carry the first std::exception_ptr back to the
//     submitting thread (see exec/parallel_trials.cpp).
//
// Thread-count resolution for the whole library also lives here:
// `resolve_threads` turns a requested count (e.g. trial_options::threads)
// into an actual one, honoring the RADIOCAST_THREADS environment default.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace radiocast::exec {

/// max(1, std::thread::hardware_concurrency()) — never 0, even when the
/// platform cannot report a count.
int hardware_threads();

/// The RADIOCAST_THREADS environment default: a positive integer enables
/// that many workers, "0" or "auto" means hardware_threads(), and an
/// unset/empty/unparsable value means 1 (serial — the safe default).
int env_threads();

/// Resolves a requested thread count: `requested` > 0 is taken literally,
/// `requested` == 0 defers to env_threads(). Negative counts are a
/// precondition violation. The result is always ≥ 1.
int resolve_threads(int requested);

/// Fixed-size worker pool. Construction spawns the workers; destruction
/// drains the queue and joins them.
class thread_pool {
 public:
  /// Spawns `threads` ≥ 1 workers.
  explicit thread_pool(int threads);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw (wrap fallible work and carry
  /// an exception_ptr out instead); a task that does throw terminates the
  /// process, which is the least-surprising failure mode for a worker.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed. The pool is
  /// reusable afterwards: submit/wait_idle rounds can repeat.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: task ready / stop
  std::condition_variable idle_cv_;  // signals wait_idle: everything done
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently running tasks
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace radiocast::exec
