#include "exec/sharding.h"

#include "util/assert.h"

namespace radiocast::exec {

void run_shards(thread_pool& pool, int shards,
                const std::function<void(int)>& body) {
  RC_REQUIRE_MSG(shards >= 1, "run_shards needs at least one shard");
  RC_REQUIRE_MSG(body != nullptr, "run_shards needs a body");
  for (int s = 1; s < shards; ++s) {
    pool.submit([&body, s] { body(s); });
  }
  body(0);
  pool.wait_idle();
}

}  // namespace radiocast::exec
