#include "exec/parallel_trials.h"

#include <exception>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "fault/fault_model.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/assert.h"

namespace radiocast {

namespace {

/// One contiguous slice of the seed range, with the private observability
/// and fault state its worker runs against.
struct shard {
  int first = 0;  ///< index of the shard's first trial within the batch
  int count = 0;
  std::unique_ptr<obs::metrics_registry> metrics;
  std::unique_ptr<fault::fault_model> faults;
  obs::span_profiler profiler;
  trial_set result;
};

}  // namespace

trial_set parallel_run_trials(const graph& g, const protocol& proto,
                              const trial_options& opts) {
  RC_REQUIRE(opts.trials >= 1);
  const int threads = exec::resolve_threads(opts.threads);
  if (threads <= 1 || opts.trials <= 1) {
    return run_trials(g, proto, opts);  // the serial path, untouched
  }

  obs::span_profiler* profiler =
      opts.profiler != nullptr ? opts.profiler : obs::global_profiler();
  obs::scoped_span batch_span(profiler, "parallel_run_trials");

  const int workers = std::min(threads, opts.trials);
  // A few shards per worker so one slow seed does not serialize the tail;
  // shards stay contiguous so the seed-order fold below reproduces the
  // serial registry (series concatenate per trial, in seed order).
  const int shard_count = std::min(opts.trials, workers * 4);
  std::vector<shard> shards(static_cast<std::size_t>(shard_count));
  {
    const int base = opts.trials / shard_count;
    const int rem = opts.trials % shard_count;
    int offset = 0;
    for (int i = 0; i < shard_count; ++i) {
      shard& s = shards[static_cast<std::size_t>(i)];
      s.first = offset;
      s.count = base + (i < rem ? 1 : 0);
      offset += s.count;
      if (opts.metrics != nullptr) {
        s.metrics = std::make_unique<obs::metrics_registry>();
      }
      if (opts.faults != nullptr) {
        s.faults = opts.faults->clone();
        RC_CHECK_MSG(s.faults != nullptr,
                     "fault model \"" + opts.faults->name() +
                         "\" does not support clone(); parallel trial "
                         "batches need one model instance per worker — "
                         "override fault_model::clone or run with threads=1");
      }
    }
  }

  std::mutex error_mu;
  std::exception_ptr first_error;
  {
    exec::thread_pool pool(workers);
    for (shard& s : shards) {
      pool.submit([&g, &proto, &opts, &s, &error_mu, &first_error] {
        try {
          trial_options topts;
          topts.trials = s.count;
          topts.base_seed =
              opts.base_seed + static_cast<std::uint64_t>(s.first);
          topts.max_steps = opts.max_steps;
          topts.stop = opts.stop;
          topts.metrics = s.metrics.get();
          // Never null: a worker must not fall back to the process-wide
          // global_profiler, which is not thread-safe.
          topts.profiler = &s.profiler;
          topts.faults = s.faults.get();
          topts.engine = opts.engine;
          topts.verify_sleepers = opts.verify_sleepers;
          s.result = run_trials(g, proto, topts);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (first_error == nullptr) first_error = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }  // joins the workers
  if (first_error != nullptr) std::rethrow_exception(first_error);

  // Fold shards back in seed order — this ordering is what makes gauge
  // last-write-wins and series concatenation match the serial pass.
  trial_set out;
  out.trials.reserve(static_cast<std::size_t>(opts.trials));
  for (shard& s : shards) {
    RC_CHECK_MSG(static_cast<int>(s.result.trials.size()) == s.count,
                 "worker shard returned a partial trial batch");
    out.trials.insert(out.trials.end(), s.result.trials.begin(),
                      s.result.trials.end());
    if (opts.metrics != nullptr) opts.metrics->merge(*s.metrics);
    if (profiler != nullptr) profiler->merge(s.profiler);
  }
  return out;
}

}  // namespace radiocast
