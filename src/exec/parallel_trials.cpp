#include "exec/parallel_trials.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "fault/fault_model.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/assert.h"

namespace radiocast {

namespace {

/// One contiguous slice of the seed range, with the private observability
/// and fault state its worker runs against.
struct shard {
  int index = 0;  ///< shard position within the batch (seed order)
  int first = 0;  ///< index of the shard's first trial within the batch
  int count = 0;
  std::unique_ptr<obs::metrics_registry> metrics;
  std::unique_ptr<fault::fault_model> faults;
  obs::span_profiler profiler;
  trial_set result;
  bool done = false;    ///< guarded by the fold mutex
  bool failed = false;  ///< guarded by the fold mutex

  shard_info info(std::uint64_t batch_base_seed) const {
    shard_info si;
    si.index = index;
    si.first = first;
    si.count = count;
    si.base_seed = batch_base_seed + static_cast<std::uint64_t>(first);
    return si;
  }
};

}  // namespace

trial_set parallel_run_trials(const graph& g, const protocol& proto,
                              const trial_options& opts) {
  RC_REQUIRE(opts.trials >= 1);
  RC_REQUIRE(opts.shard_size >= 0);
  const int threads = exec::resolve_threads(opts.threads);
  // The plain-serial fast path exists only when nothing observable depends
  // on shard structure: no lifecycle hooks, no pinned shard size.
  if (!opts.hooks.any() && opts.shard_size == 0 &&
      (threads <= 1 || opts.trials <= 1)) {
    return run_trials(g, proto, opts);  // the serial path, untouched
  }

  obs::span_profiler* profiler =
      opts.profiler != nullptr ? opts.profiler : obs::global_profiler();
  obs::scoped_span batch_span(profiler, "parallel_run_trials");

  const int workers = std::max(1, std::min(threads, opts.trials));
  // Shard boundaries: a pinned shard_size makes them a function of the
  // batch alone (campaign artifacts must not depend on the host's core
  // count); auto mode cuts a few per worker so one slow seed does not
  // serialize the tail. Either way shards stay contiguous in seed order,
  // which is what makes the in-order fold below reproduce the serial
  // registry (series concatenate per trial, in seed order).
  const int shard_count =
      opts.shard_size > 0
          ? (opts.trials + opts.shard_size - 1) / opts.shard_size
          : std::min(opts.trials, workers * 4);
  std::vector<shard> shards(static_cast<std::size_t>(shard_count));
  {
    const int base = opts.trials / shard_count;
    const int rem = opts.trials % shard_count;
    int offset = 0;
    for (int i = 0; i < shard_count; ++i) {
      shard& s = shards[static_cast<std::size_t>(i)];
      s.index = i;
      s.first = offset;
      s.count = opts.shard_size > 0
                    ? std::min(opts.shard_size, opts.trials - offset)
                    : base + (i < rem ? 1 : 0);
      offset += s.count;
      if (opts.metrics != nullptr) {
        s.metrics = std::make_unique<obs::metrics_registry>();
      }
      if (opts.faults != nullptr) {
        s.faults = opts.faults->clone();
        RC_CHECK_MSG(s.faults != nullptr,
                     "fault model \"" + opts.faults->name() +
                         "\" does not support clone(); parallel trial "
                         "batches need one model instance per worker — "
                         "override fault_model::clone or run with threads=1");
      }
    }
    RC_CHECK_MSG(offset == opts.trials,
                 "shard plan does not cover the trial range exactly");
  }

  std::mutex mu;
  std::condition_variable shard_done;
  std::exception_ptr first_error;

  trial_set out;
  if (!opts.hooks.discard_records) {
    out.trials.reserve(static_cast<std::size_t>(opts.trials));
  }
  {
    exec::thread_pool pool(workers);
    for (shard& s : shards) {
      pool.submit([&g, &proto, &opts, &s, &mu, &shard_done, &first_error] {
        try {
          if (opts.hooks.on_start) opts.hooks.on_start(s.info(opts.base_seed));
          trial_options topts;
          topts.trials = s.count;
          topts.base_seed =
              opts.base_seed + static_cast<std::uint64_t>(s.first);
          topts.max_steps = opts.max_steps;
          topts.stop = opts.stop;
          topts.metrics = s.metrics.get();
          // Never null: a worker must not fall back to the process-wide
          // global_profiler, which is not thread-safe.
          topts.profiler = &s.profiler;
          topts.faults = s.faults.get();
          topts.engine = opts.engine;
          topts.verify_sleepers = opts.verify_sleepers;
          topts.step_threads = opts.step_threads;
          topts.step_shard_grain = opts.step_shard_grain;
          s.result = run_trials(g, proto, topts);
          const std::lock_guard<std::mutex> lock(mu);
          s.done = true;
        } catch (...) {
          const std::lock_guard<std::mutex> lock(mu);
          if (first_error == nullptr) first_error = std::current_exception();
          s.failed = true;
          s.done = true;
        }
        shard_done.notify_all();
      });
    }

    // Streaming fold: wait for each shard IN SEED ORDER and retire it while
    // later shards are still running — on_done fires on this thread with
    // the shard's records, then the shard's memory is released. Bounded by
    // the skew between shards, not the whole batch.
    for (shard& s : shards) {
      bool failed = false;
      {
        std::unique_lock<std::mutex> lock(mu);
        shard_done.wait(lock, [&s] { return s.done; });
        failed = s.failed;
      }
      // A failed shard ends the fold: every earlier shard already streamed
      // out (a valid prefix), no later shard's on_done fires.
      if (failed) break;
      RC_CHECK_MSG(static_cast<int>(s.result.trials.size()) == s.count,
                   "worker shard returned a partial trial batch");
      if (opts.hooks.on_done) {
        opts.hooks.on_done(s.info(opts.base_seed), s.result);
      }
      if (opts.metrics != nullptr) opts.metrics->merge(*s.metrics);
      if (profiler != nullptr) profiler->merge(s.profiler);
      if (opts.hooks.discard_records) {
        s.result = trial_set{};  // release now, while later shards run
      } else {
        out.trials.insert(out.trials.end(),
                          std::make_move_iterator(s.result.trials.begin()),
                          std::make_move_iterator(s.result.trials.end()));
        s.result = trial_set{};
      }
      s.metrics.reset();
    }
    pool.wait_idle();
  }  // joins the workers
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return out;
}

}  // namespace radiocast
