// Structural analysis of radio networks: BFS layering, radius, connectivity.
//
// The paper's time bounds are stated in terms of n (node count) and D — the
// *radius*, i.e. the largest distance from the source (node 0) to any node.
// The "jth layer" is the set of nodes at distance j from the source.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace radiocast {

/// Distance (#hops) from `source` to every node; unreachable ⇒ −1.
/// Follows out-edges, which matches reachability in directed radio networks.
std::vector<int> bfs_distances(const graph& g, node_id source);

/// Radius as the paper defines it: max distance from `source` over all
/// nodes. Throws precondition_error if some node is unreachable.
int radius_from(const graph& g, node_id source = 0);

/// Nodes grouped by distance from `source`: result[j] = jth layer.
/// Throws if some node is unreachable.
std::vector<std::vector<node_id>> bfs_layers(const graph& g,
                                             node_id source = 0);

/// True iff every node is reachable from `source` along out-edges.
bool all_reachable(const graph& g, node_id source = 0);

/// True iff an undirected graph is connected. Requires an undirected graph.
bool is_connected(const graph& g);

/// Max out-degree over all nodes.
node_id max_degree(const graph& g);

/// True iff `g` is a complete layered network w.r.t. BFS layers from node 0:
/// adjacent pairs are exactly those in consecutive layers (the paper's
/// extremal family, Section 4.3). Requires an undirected connected graph.
bool is_complete_layered(const graph& g);

}  // namespace radiocast
