#include "graph/graph.h"

#include <algorithm>
#include <sstream>

namespace radiocast {

graph::graph(node_id n, bool directed)
    : n_(n),
      directed_(directed),
      build_out_(static_cast<std::size_t>(n)),
      build_in_(directed ? static_cast<std::size_t>(n) : 0) {
  RC_REQUIRE(n >= 1);
}

graph graph::undirected(node_id n) { return graph(n, /*directed=*/false); }

graph graph::directed(node_id n) { return graph(n, /*directed=*/true); }

void graph::add_edge(node_id u, node_id v) { add_edge_unchecked(u, v); }

void graph::add_edge_unchecked(node_id u, node_id v) {
  RC_REQUIRE_MSG(!finalized_, "graph is finalized; no further edges");
  RC_REQUIRE(valid(u) && valid(v));
  RC_REQUIRE_MSG(u != v, "self-loops are not allowed");
  build_out_[static_cast<std::size_t>(u)].push_back(v);
  if (directed_) {
    build_in_[static_cast<std::size_t>(v)].push_back(u);
  } else {
    build_out_[static_cast<std::size_t>(v)].push_back(u);
  }
  ++edge_count_;
}

bool graph::has_edge(node_id u, node_id v) const {
  RC_REQUIRE(valid(u) && valid(v));
  const auto adj = out_neighbors(u);
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

void graph::finalize() {
  if (finalized_) return;
  const auto n = static_cast<std::size_t>(n_);
  // Per-row dedup via a stamp array: mark[v] == u means v was already kept
  // in row u. First occurrence wins, reproducing exactly the adjacency the
  // old per-add duplicate scan built — finalize changes nothing but cost.
  std::vector<node_id> mark(n, -1);
  const auto flatten = [&mark, n](std::vector<std::vector<node_id>>& rows,
                                  std::vector<std::size_t>& off,
                                  std::vector<node_id>& adj) {
    std::size_t total = 0;
    for (const auto& row : rows) total += row.size();
    off.assign(n + 1, 0);
    adj.clear();
    adj.reserve(total);
    std::fill(mark.begin(), mark.end(), -1);
    for (std::size_t u = 0; u < n; ++u) {
      off[u] = adj.size();
      for (const node_id v : rows[u]) {
        auto& m = mark[static_cast<std::size_t>(v)];
        if (m == static_cast<node_id>(u)) continue;  // duplicate in row u
        m = static_cast<node_id>(u);
        adj.push_back(v);
      }
    }
    off[n] = adj.size();
    rows.clear();
    rows.shrink_to_fit();
  };
  flatten(build_out_, out_off_, out_adj_);
  if (directed_) {
    flatten(build_in_, in_off_, in_adj_);
    RC_CHECK(in_adj_.size() == out_adj_.size());
    edge_count_ = out_adj_.size();
  } else {
    RC_CHECK(out_adj_.size() % 2 == 0);
    edge_count_ = out_adj_.size() / 2;
  }
  finalized_ = true;
}

void graph::sort_adjacency() {
  if (finalized_) {
    const auto n = static_cast<std::size_t>(n_);
    for (std::size_t v = 0; v < n; ++v) {
      std::sort(out_adj_.begin() + static_cast<std::ptrdiff_t>(out_off_[v]),
                out_adj_.begin() + static_cast<std::ptrdiff_t>(out_off_[v + 1]));
      if (directed_) {
        std::sort(in_adj_.begin() + static_cast<std::ptrdiff_t>(in_off_[v]),
                  in_adj_.begin() + static_cast<std::ptrdiff_t>(in_off_[v + 1]));
      }
    }
    return;
  }
  for (auto& adj : build_out_) std::sort(adj.begin(), adj.end());
  for (auto& adj : build_in_) std::sort(adj.begin(), adj.end());
}

graph graph::as_directed() const {
  if (directed_) return *this;
  graph g = graph::directed(node_count());
  for (node_id u = 0; u < node_count(); ++u) {
    for (node_id v : out_neighbors(u)) g.add_edge(u, v);
  }
  g.finalize();
  return g;
}

std::string graph::to_dot(const std::string& name) const {
  std::ostringstream os;
  os << (directed_ ? "digraph " : "graph ") << name << " {\n";
  const char* arrow = directed_ ? " -> " : " -- ";
  for (node_id u = 0; u < node_count(); ++u) {
    for (node_id v : out_neighbors(u)) {
      if (!directed_ && v < u) continue;  // emit each undirected edge once
      os << "  " << u << arrow << v << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string graph::to_edge_list() const {
  std::ostringstream os;
  for (node_id u = 0; u < node_count(); ++u) {
    for (node_id v : out_neighbors(u)) {
      if (!directed_ && v < u) continue;
      os << u << ' ' << v << '\n';
    }
  }
  return os.str();
}

graph graph::from_edge_list(node_id n, const std::string& text,
                            bool directed_edges) {
  graph g = directed_edges ? graph::directed(n) : graph::undirected(n);
  std::istringstream is(text);
  node_id u = 0;
  node_id v = 0;
  while (is >> u >> v) g.add_edge(u, v);
  g.finalize();
  return g;
}

}  // namespace radiocast
