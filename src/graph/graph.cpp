#include "graph/graph.h"

#include <algorithm>
#include <sstream>

namespace radiocast {

graph::graph(node_id n, bool directed)
    : directed_(directed),
      out_(static_cast<std::size_t>(n)),
      in_(static_cast<std::size_t>(n)) {
  RC_REQUIRE(n >= 1);
}

graph graph::undirected(node_id n) { return graph(n, /*directed=*/false); }

graph graph::directed(node_id n) { return graph(n, /*directed=*/true); }

void graph::add_edge(node_id u, node_id v) {
  RC_REQUIRE(valid(u) && valid(v));
  if (has_edge(u, v)) return;
  add_edge_unchecked(u, v);
}

void graph::add_edge_unchecked(node_id u, node_id v) {
  RC_REQUIRE(valid(u) && valid(v));
  RC_REQUIRE_MSG(u != v, "self-loops are not allowed");
  out_[static_cast<std::size_t>(u)].push_back(v);
  in_[static_cast<std::size_t>(v)].push_back(u);
  if (!directed_) {
    out_[static_cast<std::size_t>(v)].push_back(u);
    in_[static_cast<std::size_t>(u)].push_back(v);
  }
  ++edge_count_;
}

bool graph::has_edge(node_id u, node_id v) const {
  RC_REQUIRE(valid(u) && valid(v));
  const auto& adj = out_[static_cast<std::size_t>(u)];
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

void graph::sort_adjacency() {
  for (auto& adj : out_) std::sort(adj.begin(), adj.end());
  for (auto& adj : in_) std::sort(adj.begin(), adj.end());
}

graph graph::as_directed() const {
  if (directed_) return *this;
  graph g = graph::directed(node_count());
  for (node_id u = 0; u < node_count(); ++u) {
    for (node_id v : out_neighbors(u)) g.add_edge(u, v);
  }
  return g;
}

std::string graph::to_dot(const std::string& name) const {
  std::ostringstream os;
  os << (directed_ ? "digraph " : "graph ") << name << " {\n";
  const char* arrow = directed_ ? " -> " : " -- ";
  for (node_id u = 0; u < node_count(); ++u) {
    for (node_id v : out_neighbors(u)) {
      if (!directed_ && v < u) continue;  // emit each undirected edge once
      os << "  " << u << arrow << v << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string graph::to_edge_list() const {
  std::ostringstream os;
  for (node_id u = 0; u < node_count(); ++u) {
    for (node_id v : out_neighbors(u)) {
      if (!directed_ && v < u) continue;
      os << u << ' ' << v << '\n';
    }
  }
  return os.str();
}

graph graph::from_edge_list(node_id n, const std::string& text,
                            bool directed_edges) {
  graph g = directed_edges ? graph::directed(n) : graph::undirected(n);
  std::istringstream is(text);
  node_id u = 0;
  node_id v = 0;
  while (is >> u >> v) g.add_edge(u, v);
  return g;
}

}  // namespace radiocast
