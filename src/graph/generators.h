// Topology generators for the experiment and test suites.
//
// The paper's claims are parameterized by (n, D); the generators here cover
// the topology families the paper reasons about — most importantly complete
// layered networks C_{n,D} (Section 4.3), the extremal family for randomized
// broadcasting — plus standard families used to exercise the algorithms.
//
// All generators produce connected graphs with node 0 as the source.
#pragma once

#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace radiocast {

/// Simple path 0 − 1 − … − (n−1); radius n−1.
graph make_path(node_id n);

/// Cycle on n ≥ 3 nodes; radius ⌊n/2⌋.
graph make_cycle(node_id n);

/// Star with center 0 and n−1 leaves; radius 1.
graph make_star(node_id n);

/// Complete graph K_n; radius 1.
graph make_complete(node_id n);

/// rows×cols grid, node 0 in a corner; radius rows+cols−2.
graph make_grid(node_id rows, node_id cols);

/// Uniform random recursive tree: node i attaches to a uniform node < i.
graph make_random_tree(node_id n, rng& gen);

/// Random tree in which every node's degree stays ≤ max_degree ≥ 2.
graph make_bounded_degree_tree(node_id n, node_id max_degree, rng& gen);

/// G(n, p) conditioned on connectivity: samples edges independently, then
/// joins any remaining components with uniformly random bridging edges.
graph make_gnp_connected(node_id n, double p, rng& gen);

/// Sparse G(n, p) conditioned on connectivity — the same model as
/// make_gnp_connected (independent edges + random bridging), but sampled
/// with geometric skips over the linearized pair sequence: cost O(n + m)
/// expected instead of the Θ(n²) pair scan, which is what makes million-node
/// G(n, p) instances constructible at all (p ~ c/n ⇒ m ~ cn/2). NOT
/// draw-for-draw compatible with make_gnp_connected: the two consume the
/// generator differently, so the same seed yields different (equally
/// distributed) graphs.
graph make_gnp_sparse_connected(node_id n, double p, rng& gen);

/// Caterpillar: a spine path of `spine` nodes, each carrying `legs` leaves.
/// n = spine·(1+legs); radius = spine−1+min(1,legs). Useful for the
/// interleaving experiment (large D, small degree).
graph make_caterpillar(node_id spine, node_id legs);

/// Complete layered network with the given layer sizes (layer 0 must have
/// size 1 — the source). Adjacent pairs are exactly those in consecutive
/// layers; radius = #layers − 1. Nodes are numbered layer by layer.
graph make_complete_layered(const std::vector<node_id>& layer_sizes);

/// Complete layered network on n nodes and radius D: layer 0 = {0}, the
/// remaining n−1 nodes split as evenly as possible across layers 1…D.
graph make_complete_layered_uniform(node_id n, int d);

/// Complete layered network where one designated layer absorbs all slack
/// ("fat layer"): every other layer has size `thin`, layer `fat_index` gets
/// the rest. Exercises nodes with very many informed in-neighbors — the
/// case the paper's universal-sequence step exists for.
graph make_complete_layered_fat(node_id n, int d, int fat_index,
                                node_id thin = 1);

/// Random layered network: same layer structure as complete layered, but
/// each node keeps one mandatory random parent in the previous layer and
/// every other consecutive-layer pair appears independently with
/// probability p.
graph make_random_layered(const std::vector<node_id>& layer_sizes, double p,
                          rng& gen);

/// Directed layered network: arcs point only from layer i to layer i+1;
/// each node of layer i+1 gets one mandatory random in-arc plus extras with
/// probability p. Directed radius = #layers − 1; there is NO path back, so
/// this exercises the genuinely directed setting of the paper's Section 2
/// (unlike as_directed(), which symmetrizes an undirected graph).
graph make_directed_layered(const std::vector<node_id>& layer_sizes, double p,
                            rng& gen);

/// Random geometric ("unit disk") graph — the canonical ad hoc radio
/// topology: n points uniform in the unit square, an edge between every
/// pair within Euclidean distance `radio_range`. Components left over
/// after sampling are bridged by their closest cross pairs so the result
/// is connected without reshaping the local structure. Node 0 is the point
/// nearest the square's corner (a "gateway" source).
graph make_random_geometric(node_id n, double radio_range, rng& gen);

/// As above, additionally returning each node's sampled (x, y) position in
/// the unit square (index = node id) for visualization.
graph make_random_geometric(node_id n, double radio_range, rng& gen,
                            std::vector<std::pair<double, double>>& positions);

/// Relabels nodes by a uniform random permutation that fixes the source
/// (node 0). Broadcast algorithms must not depend on friendly labelings.
graph permute_labels(const graph& g, rng& gen);

/// Relabels nodes by an explicit permutation `perm` (perm[old] = new);
/// perm[0] must be 0.
graph permute_labels(const graph& g, const std::vector<node_id>& perm);

/// Layer sizes splitting `total` nodes as evenly as possible into `parts`
/// layers (earlier layers get the remainder). Exposed for tests.
std::vector<node_id> even_split(node_id total, int parts);

/// Distinct uniformly random labels from {0,…,r} with labels[0] = 0, for
/// run_options::labels — the paper's model fixes only r = O(n), so label
/// spaces sparser than {0,…,n−1} are legal and exercised by experiment E14.
std::vector<node_id> sparse_labels(node_id n, node_id r, rng& gen);

}  // namespace radiocast
