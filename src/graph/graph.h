// Graph substrate for radio network simulation.
//
// Networks are modeled exactly as in the paper: nodes carry distinct labels
// from {0, …, r} with r linear in n, node 0 is the broadcast source, and the
// topology is a connected graph (undirected in general; Section 2 of the
// paper additionally analyzes directed graphs, which we support as well).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/assert.h"

namespace radiocast {

/// Node identifier; doubles as the node's label in the paper's model.
using node_id = std::int32_t;

/// A simple graph (no self-loops, no parallel edges) stored as adjacency
/// lists, with both out- and in-neighborhoods materialized so the radio
/// simulator can resolve receptions in O(in-degree).
///
/// For undirected graphs the two neighborhoods coincide.
class graph {
 public:
  /// Creates an undirected graph on nodes {0, …, n−1}.
  static graph undirected(node_id n);

  /// Creates a directed graph on nodes {0, …, n−1}.
  static graph directed(node_id n);

  node_id node_count() const noexcept {
    return static_cast<node_id>(out_.size());
  }

  /// Number of edges (each undirected edge counted once).
  std::size_t edge_count() const noexcept { return edge_count_; }

  bool is_directed() const noexcept { return directed_; }

  /// Adds edge u→v (and v→u when undirected). Ignores duplicates;
  /// rejects self-loops and out-of-range endpoints.
  void add_edge(node_id u, node_id v);

  /// Adds edge u→v without the O(degree) duplicate scan. For generators
  /// that can prove each edge is added once (e.g. complete layered
  /// networks); adding a duplicate through this entry is a caller bug.
  void add_edge_unchecked(node_id u, node_id v);

  /// True iff u→v is an edge (O(out-degree of u)).
  bool has_edge(node_id u, node_id v) const;

  std::span<const node_id> out_neighbors(node_id v) const {
    RC_REQUIRE(valid(v));
    return out_[static_cast<std::size_t>(v)];
  }

  std::span<const node_id> in_neighbors(node_id v) const {
    RC_REQUIRE(valid(v));
    return in_[static_cast<std::size_t>(v)];
  }

  node_id out_degree(node_id v) const {
    return static_cast<node_id>(out_neighbors(v).size());
  }

  node_id in_degree(node_id v) const {
    return static_cast<node_id>(in_neighbors(v).size());
  }

  /// Sorts all adjacency lists ascending (useful for deterministic output
  /// and binary-searchable membership). Idempotent.
  void sort_adjacency();

  /// Returns the directed view of this graph: undirected graphs are
  /// reinterpreted with each edge replaced by two opposite arcs (this is
  /// exactly the reduction used at the start of the paper's Section 2).
  graph as_directed() const;

  /// Renders the graph in Graphviz DOT format (for the examples).
  std::string to_dot(const std::string& name = "radio") const;

  /// Serializes as "u v" edge lines, one per edge.
  std::string to_edge_list() const;

  /// Parses the edge-list format produced by to_edge_list().
  static graph from_edge_list(node_id n, const std::string& text,
                              bool directed_edges = false);

 private:
  explicit graph(node_id n, bool directed);

  bool valid(node_id v) const noexcept {
    return v >= 0 && v < node_count();
  }

  bool directed_ = false;
  std::size_t edge_count_ = 0;
  std::vector<std::vector<node_id>> out_;
  std::vector<std::vector<node_id>> in_;
};

}  // namespace radiocast
