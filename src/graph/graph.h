// Graph substrate for radio network simulation.
//
// Networks are modeled exactly as in the paper: nodes carry distinct labels
// from {0, …, r} with r linear in n, node 0 is the broadcast source, and the
// topology is a connected graph (undirected in general; Section 2 of the
// paper additionally analyzes directed graphs, which we support as well).
//
// Storage is two-phase (see docs/PERFORMANCE.md):
//   * building — edges accumulate in per-node vectors; duplicates are
//     tolerated and all accessors work, so generators can query the
//     partial graph while constructing it;
//   * finalized — finalize() dedupes every adjacency list (keeping first-
//     occurrence order, exactly what the old per-add duplicate scan
//     produced) and flattens it into compressed-sparse-row form: one flat
//     node_id buffer plus an offset table per direction. A transmitter's
//     out-neighborhood is then a contiguous slice, so the simulator's
//     reception sweep walks memory sequentially.
// The simulator requires a finalized graph; every generator returns one.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/assert.h"

namespace radiocast {

/// Node identifier; doubles as the node's label in the paper's model.
using node_id = std::int32_t;

/// A simple graph (no self-loops, no parallel edges) with both out- and
/// in-neighborhoods materialized so the radio simulator can resolve
/// receptions in O(in-degree). For undirected graphs the two neighborhoods
/// coincide (and share storage once finalized).
class graph {
 public:
  /// Creates an undirected graph on nodes {0, …, n−1}.
  static graph undirected(node_id n);

  /// Creates a directed graph on nodes {0, …, n−1}.
  static graph directed(node_id n);

  node_id node_count() const noexcept { return n_; }

  /// Number of edges (each undirected edge counted once). Before
  /// finalize(), duplicate add_edge calls are still counted; the value is
  /// exact once the graph is finalized.
  std::size_t edge_count() const noexcept { return edge_count_; }

  bool is_directed() const noexcept { return directed_; }

  /// Adds edge u→v (and v→u when undirected); rejects self-loops,
  /// out-of-range endpoints, and finalized graphs. Duplicates are
  /// tolerated here and removed by finalize() — there is no per-add
  /// duplicate scan, so dense construction is linear in adds, not
  /// quadratic in degree.
  void add_edge(node_id u, node_id v);

  /// As add_edge, for callers that can prove each edge is added once
  /// (e.g. complete layered networks). Adding a duplicate through this
  /// entry is a caller bug; finalize() silently repairs it.
  void add_edge_unchecked(node_id u, node_id v);

  /// True iff u→v is an edge (O(out-degree of u)).
  bool has_edge(node_id u, node_id v) const;

  /// Dedupes adjacency lists (first occurrence wins), recomputes
  /// edge_count(), and flattens storage into CSR form. Further add_edge
  /// calls throw. Idempotent. Every generator calls this before
  /// returning; hand-built graphs must call it before simulation.
  void finalize();

  bool finalized() const noexcept { return finalized_; }

  std::span<const node_id> out_neighbors(node_id v) const {
    RC_REQUIRE(valid(v));
    const auto i = static_cast<std::size_t>(v);
    if (finalized_) {
      return {out_adj_.data() + out_off_[i], out_off_[i + 1] - out_off_[i]};
    }
    return build_out_[i];
  }

  std::span<const node_id> in_neighbors(node_id v) const {
    if (!directed_) return out_neighbors(v);
    RC_REQUIRE(valid(v));
    const auto i = static_cast<std::size_t>(v);
    if (finalized_) {
      return {in_adj_.data() + in_off_[i], in_off_[i + 1] - in_off_[i]};
    }
    return build_in_[i];
  }

  /// First flat CSR slot of v's out-row (finalized graphs only): the i-th
  /// entry of out_neighbors(v) occupies edge slot out_edge_base(v) + i.
  /// Slots index the packed per-edge masks in the simulator (down edges).
  std::size_t out_edge_base(node_id v) const {
    RC_REQUIRE(finalized_ && valid(v));
    return out_off_[static_cast<std::size_t>(v)];
  }

  /// Total number of out-edge slots (finalized graphs only): directed edge
  /// count, or twice the edge count for undirected graphs.
  std::size_t out_slot_count() const {
    RC_REQUIRE(finalized_);
    return out_adj_.size();
  }

  node_id out_degree(node_id v) const {
    return static_cast<node_id>(out_neighbors(v).size());
  }

  node_id in_degree(node_id v) const {
    return static_cast<node_id>(in_neighbors(v).size());
  }

  /// Sorts all adjacency lists ascending (useful for deterministic output
  /// and binary-searchable membership). Idempotent; works in either
  /// storage phase.
  void sort_adjacency();

  /// Returns the directed view of this graph: undirected graphs are
  /// reinterpreted with each edge replaced by two opposite arcs (this is
  /// exactly the reduction used at the start of the paper's Section 2).
  /// The returned graph is finalized.
  graph as_directed() const;

  /// Renders the graph in Graphviz DOT format (for the examples).
  std::string to_dot(const std::string& name = "radio") const;

  /// Serializes as "u v" edge lines, one per edge.
  std::string to_edge_list() const;

  /// Parses the edge-list format produced by to_edge_list(). The returned
  /// graph is finalized.
  static graph from_edge_list(node_id n, const std::string& text,
                              bool directed_edges = false);

 private:
  explicit graph(node_id n, bool directed);

  bool valid(node_id v) const noexcept { return v >= 0 && v < n_; }

  node_id n_ = 0;
  bool directed_ = false;
  bool finalized_ = false;
  std::size_t edge_count_ = 0;
  // Building phase: per-node adjacency (build_in_ only for directed
  // graphs — undirected in-neighborhoods equal the out-neighborhoods).
  std::vector<std::vector<node_id>> build_out_;
  std::vector<std::vector<node_id>> build_in_;
  // Finalized phase: CSR — row v of `*_adj_` is [*_off_[v], *_off_[v+1]).
  std::vector<std::size_t> out_off_;
  std::vector<std::size_t> in_off_;
  std::vector<node_id> out_adj_;
  std::vector<node_id> in_adj_;
};

}  // namespace radiocast
