#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/analysis.h"

namespace radiocast {

graph make_path(node_id n) {
  RC_REQUIRE(n >= 1);
  graph g = graph::undirected(n);
  for (node_id v = 0; v + 1 < n; ++v) g.add_edge_unchecked(v, v + 1);
  g.finalize();
  return g;
}

graph make_cycle(node_id n) {
  RC_REQUIRE(n >= 3);
  graph g = graph::undirected(n);
  for (node_id v = 0; v + 1 < n; ++v) g.add_edge_unchecked(v, v + 1);
  g.add_edge_unchecked(n - 1, 0);
  g.finalize();
  return g;
}

graph make_star(node_id n) {
  RC_REQUIRE(n >= 2);
  graph g = graph::undirected(n);
  for (node_id v = 1; v < n; ++v) g.add_edge_unchecked(0, v);
  g.finalize();
  return g;
}

graph make_complete(node_id n) {
  RC_REQUIRE(n >= 2);
  graph g = graph::undirected(n);
  for (node_id u = 0; u < n; ++u) {
    for (node_id v = u + 1; v < n; ++v) g.add_edge_unchecked(u, v);
  }
  g.finalize();
  return g;
}

graph make_grid(node_id rows, node_id cols) {
  RC_REQUIRE(rows >= 1 && cols >= 1 && rows * cols >= 2);
  graph g = graph::undirected(rows * cols);
  auto id = [cols](node_id r, node_id c) { return r * cols + c; };
  for (node_id r = 0; r < rows; ++r) {
    for (node_id c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge_unchecked(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge_unchecked(id(r, c), id(r + 1, c));
    }
  }
  g.finalize();
  return g;
}

graph make_random_tree(node_id n, rng& gen) {
  RC_REQUIRE(n >= 1);
  graph g = graph::undirected(n);
  for (node_id v = 1; v < n; ++v) {
    const auto parent = static_cast<node_id>(
        gen.below(static_cast<std::uint64_t>(v)));
    g.add_edge_unchecked(v, parent);
  }
  g.finalize();
  return g;
}

graph make_bounded_degree_tree(node_id n, node_id max_degree, rng& gen) {
  RC_REQUIRE(n >= 1);
  RC_REQUIRE(max_degree >= 2);
  graph g = graph::undirected(n);
  std::vector<node_id> open;  // nodes with spare degree capacity
  std::vector<node_id> degree(static_cast<std::size_t>(n), 0);
  open.push_back(0);
  for (node_id v = 1; v < n; ++v) {
    RC_CHECK(!open.empty());
    const std::size_t pick = gen.below(open.size());
    const node_id parent = open[pick];
    g.add_edge_unchecked(v, parent);
    auto& dp = degree[static_cast<std::size_t>(parent)];
    auto& dv = degree[static_cast<std::size_t>(v)];
    ++dp;
    ++dv;
    if (dp >= max_degree) {
      open[pick] = open.back();
      open.pop_back();
    }
    if (dv < max_degree) open.push_back(v);
  }
  g.finalize();
  return g;
}

namespace {

// Union-find over sampled components, then bridge components with random
// edges so the result is connected without reshaping the bulk topology.
// Shared by both G(n, p) generators; draws below(n) once per rejection.
void bridge_components(graph& g, node_id n, rng& gen) {
  std::vector<node_id> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<node_id> find_stack;
  auto find = [&](node_id x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      find_stack.push_back(x);
      x = parent[static_cast<std::size_t>(x)];
    }
    for (node_id y : find_stack) parent[static_cast<std::size_t>(y)] = x;
    find_stack.clear();
    return x;
  };
  for (node_id u = 0; u < n; ++u) {
    for (node_id v : g.out_neighbors(u)) {
      parent[static_cast<std::size_t>(find(u))] = find(v);
    }
  }
  for (node_id v = 1; v < n; ++v) {
    if (find(v) != find(0)) {
      // Attach v's component to a random already-connected node.
      node_id target;
      do {
        target = static_cast<node_id>(
            gen.below(static_cast<std::uint64_t>(n)));
      } while (find(target) != find(0));
      g.add_edge(v, target);
      parent[static_cast<std::size_t>(find(v))] = find(target);
    }
  }
}

}  // namespace

graph make_gnp_connected(node_id n, double p, rng& gen) {
  RC_REQUIRE(n >= 2);
  RC_REQUIRE(p >= 0.0 && p <= 1.0);
  graph g = graph::undirected(n);
  for (node_id u = 0; u < n; ++u) {
    for (node_id v = u + 1; v < n; ++v) {
      if (gen.bernoulli(p)) g.add_edge_unchecked(u, v);
    }
  }
  bridge_components(g, n, gen);
  g.finalize();
  return g;
}

graph make_gnp_sparse_connected(node_id n, double p, rng& gen) {
  RC_REQUIRE(n >= 2);
  RC_REQUIRE(p >= 0.0 && p <= 1.0);
  graph g = graph::undirected(n);
  if (p > 0.0) {
    // Geometric edge-skipping: instead of a bernoulli per pair, draw the
    // gap to the next PRESENT pair directly — Geometric(p) — and advance a
    // (row, col) cursor over the linearized sequence (0,1), (0,2), …,
    // (n−2, n−1). Expected cost is one log per present edge plus the O(n)
    // total row walk. p == 1 degenerates gracefully: log1p(-1) = −inf makes
    // every skip 0, so all pairs are emitted.
    const double log_q = std::log1p(-p);
    node_id a = 0;
    node_id b = 1;
    // Advance the cursor by `steps` candidate pairs; a == n−1 ⇔ exhausted.
    const auto advance = [&](std::uint64_t steps) {
      while (a < n - 1) {
        const auto row_left = static_cast<std::uint64_t>(n - b);
        if (steps < row_left) {
          b += static_cast<node_id>(steps);
          return;
        }
        steps -= row_left;
        ++a;
        b = a + 1;
      }
    };
    const auto total =
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n - 1) / 2;
    while (a < n - 1) {
      // u ∈ (0, 1] so log(u) is finite (≤ 0) and the skip is well-defined.
      const double u = 1.0 - gen.uniform01();
      const double skip = std::log(u) / log_q;
      if (!(skip < static_cast<double>(total))) break;  // no further edge
      advance(static_cast<std::uint64_t>(skip));
      if (a >= n - 1) break;
      g.add_edge_unchecked(a, b);
      advance(1);
    }
  }
  bridge_components(g, n, gen);
  g.finalize();
  return g;
}

graph make_caterpillar(node_id spine, node_id legs) {
  RC_REQUIRE(spine >= 2);
  RC_REQUIRE(legs >= 0);
  const node_id n = spine * (1 + legs);
  graph g = graph::undirected(n);
  for (node_id s = 0; s + 1 < spine; ++s) g.add_edge_unchecked(s, s + 1);
  node_id next = spine;
  for (node_id s = 0; s < spine; ++s) {
    for (node_id leg = 0; leg < legs; ++leg) {
      g.add_edge_unchecked(s, next++);
    }
  }
  RC_CHECK(next == n);
  g.finalize();
  return g;
}

graph make_complete_layered(const std::vector<node_id>& layer_sizes) {
  RC_REQUIRE(layer_sizes.size() >= 2);
  RC_REQUIRE_MSG(layer_sizes.front() == 1, "layer 0 must be the source only");
  node_id n = 0;
  for (node_id size : layer_sizes) {
    RC_REQUIRE(size >= 1);
    n += size;
  }
  graph g = graph::undirected(n);
  node_id layer_start = 0;
  for (std::size_t layer = 0; layer + 1 < layer_sizes.size(); ++layer) {
    const node_id this_size = layer_sizes[layer];
    const node_id next_start = layer_start + this_size;
    const node_id next_size = layer_sizes[layer + 1];
    for (node_id u = layer_start; u < layer_start + this_size; ++u) {
      for (node_id v = next_start; v < next_start + next_size; ++v) {
        g.add_edge_unchecked(u, v);
      }
    }
    layer_start = next_start;
  }
  g.finalize();
  return g;
}

std::vector<node_id> even_split(node_id total, int parts) {
  RC_REQUIRE(parts >= 1);
  RC_REQUIRE(total >= parts);
  std::vector<node_id> sizes(static_cast<std::size_t>(parts),
                             total / parts);
  for (node_id i = 0; i < total % parts; ++i) {
    ++sizes[static_cast<std::size_t>(i)];
  }
  return sizes;
}

graph make_complete_layered_uniform(node_id n, int d) {
  RC_REQUIRE(d >= 1);
  RC_REQUIRE_MSG(n >= d + 1, "need at least one node per layer");
  std::vector<node_id> sizes{1};
  const auto rest = even_split(n - 1, d);
  sizes.insert(sizes.end(), rest.begin(), rest.end());
  return make_complete_layered(sizes);
}

graph make_complete_layered_fat(node_id n, int d, int fat_index,
                                node_id thin) {
  RC_REQUIRE(d >= 1);
  RC_REQUIRE(fat_index >= 1 && fat_index <= d);
  RC_REQUIRE(thin >= 1);
  const node_id base = 1 + thin * (d - 1);
  RC_REQUIRE_MSG(n >= base + 1, "not enough nodes for the fat layer");
  std::vector<node_id> sizes(static_cast<std::size_t>(d) + 1, thin);
  sizes[0] = 1;
  sizes[static_cast<std::size_t>(fat_index)] = n - base;
  return make_complete_layered(sizes);
}

graph make_random_layered(const std::vector<node_id>& layer_sizes, double p,
                          rng& gen) {
  RC_REQUIRE(layer_sizes.size() >= 2);
  RC_REQUIRE(layer_sizes.front() == 1);
  RC_REQUIRE(p >= 0.0 && p <= 1.0);
  node_id n = 0;
  for (node_id size : layer_sizes) {
    RC_REQUIRE(size >= 1);
    n += size;
  }
  graph g = graph::undirected(n);
  node_id layer_start = 0;
  for (std::size_t layer = 0; layer + 1 < layer_sizes.size(); ++layer) {
    const node_id this_size = layer_sizes[layer];
    const node_id next_start = layer_start + this_size;
    const node_id next_size = layer_sizes[layer + 1];
    for (node_id v = next_start; v < next_start + next_size; ++v) {
      // One mandatory parent keeps layers intact; extras appear w.p. p.
      const node_id mandatory =
          layer_start + static_cast<node_id>(
                            gen.below(static_cast<std::uint64_t>(this_size)));
      g.add_edge_unchecked(mandatory, v);
      for (node_id u = layer_start; u < next_start; ++u) {
        if (u != mandatory && gen.bernoulli(p)) g.add_edge_unchecked(u, v);
      }
    }
    layer_start = next_start;
  }
  g.finalize();
  return g;
}

std::vector<node_id> sparse_labels(node_id n, node_id r, rng& gen) {
  RC_REQUIRE(n >= 1);
  RC_REQUIRE_MSG(r >= n - 1, "need at least n distinct labels in {0..r}");
  // Partial Fisher–Yates over {1..r}: draw n−1 distinct nonzero labels.
  std::vector<node_id> urn(static_cast<std::size_t>(r));
  std::iota(urn.begin(), urn.end(), 1);
  std::vector<node_id> labels{0};
  for (node_id i = 0; i < n - 1; ++i) {
    const std::size_t j =
        static_cast<std::size_t>(i) +
        gen.below(urn.size() - static_cast<std::size_t>(i));
    std::swap(urn[static_cast<std::size_t>(i)], urn[j]);
    labels.push_back(urn[static_cast<std::size_t>(i)]);
  }
  return labels;
}

graph make_directed_layered(const std::vector<node_id>& layer_sizes,
                            double p, rng& gen) {
  RC_REQUIRE(layer_sizes.size() >= 2);
  RC_REQUIRE(layer_sizes.front() == 1);
  RC_REQUIRE(p >= 0.0 && p <= 1.0);
  node_id n = 0;
  for (node_id size : layer_sizes) {
    RC_REQUIRE(size >= 1);
    n += size;
  }
  graph g = graph::directed(n);
  node_id layer_start = 0;
  for (std::size_t layer = 0; layer + 1 < layer_sizes.size(); ++layer) {
    const node_id this_size = layer_sizes[layer];
    const node_id next_start = layer_start + this_size;
    const node_id next_size = layer_sizes[layer + 1];
    for (node_id v = next_start; v < next_start + next_size; ++v) {
      const node_id mandatory =
          layer_start + static_cast<node_id>(
                            gen.below(static_cast<std::uint64_t>(this_size)));
      g.add_edge_unchecked(mandatory, v);
      for (node_id u = layer_start; u < next_start; ++u) {
        if (u != mandatory && gen.bernoulli(p)) g.add_edge_unchecked(u, v);
      }
    }
    layer_start = next_start;
  }
  g.finalize();
  return g;
}

graph make_random_geometric(node_id n, double radio_range, rng& gen) {
  std::vector<std::pair<double, double>> points;
  return make_random_geometric(n, radio_range, gen, points);
}

graph make_random_geometric(
    node_id n, double radio_range, rng& gen,
    std::vector<std::pair<double, double>>& points) {
  RC_REQUIRE(n >= 2);
  RC_REQUIRE(radio_range > 0.0);
  points.assign(static_cast<std::size_t>(n), {0.0, 0.0});
  for (auto& p : points) p = {gen.uniform01(), gen.uniform01()};
  // Node 0 plays the source; make it the point closest to the corner so
  // the radius is typically Θ(1/range) rather than accidental.
  std::size_t corner = 0;
  auto corner_dist = [&](std::size_t i) {
    return points[i].first * points[i].first +
           points[i].second * points[i].second;
  };
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (corner_dist(i) < corner_dist(corner)) corner = i;
  }
  std::swap(points[0], points[corner]);

  auto dist2 = [&](node_id a, node_id b) {
    const double dx = points[static_cast<std::size_t>(a)].first -
                      points[static_cast<std::size_t>(b)].first;
    const double dy = points[static_cast<std::size_t>(a)].second -
                      points[static_cast<std::size_t>(b)].second;
    return dx * dx + dy * dy;
  };

  graph g = graph::undirected(n);
  const double range2 = radio_range * radio_range;
  for (node_id u = 0; u < n; ++u) {
    for (node_id v = u + 1; v < n; ++v) {
      if (dist2(u, v) <= range2) g.add_edge_unchecked(u, v);
    }
  }

  // Bridge leftover components via their geometrically closest cross pair.
  std::vector<node_id> component(static_cast<std::size_t>(n), -1);
  for (;;) {
    std::fill(component.begin(), component.end(), -1);
    std::vector<node_id> stack{0};
    component[0] = 0;
    while (!stack.empty()) {
      const node_id u = stack.back();
      stack.pop_back();
      for (node_id v : g.out_neighbors(u)) {
        if (component[static_cast<std::size_t>(v)] == -1) {
          component[static_cast<std::size_t>(v)] = 0;
          stack.push_back(v);
        }
      }
    }
    node_id best_in = -1;
    node_id best_out = -1;
    double best = 0.0;
    for (node_id u = 0; u < n; ++u) {
      if (component[static_cast<std::size_t>(u)] != 0) continue;
      for (node_id v = 0; v < n; ++v) {
        if (component[static_cast<std::size_t>(v)] == 0) continue;
        const double d = dist2(u, v);
        if (best_in == -1 || d < best) {
          best = d;
          best_in = u;
          best_out = v;
        }
      }
    }
    if (best_in == -1) break;  // connected
    g.add_edge(best_in, best_out);
  }
  g.finalize();
  return g;
}

graph permute_labels(const graph& g, const std::vector<node_id>& perm) {
  RC_REQUIRE(perm.size() == static_cast<std::size_t>(g.node_count()));
  RC_REQUIRE_MSG(perm[0] == 0, "the source's label 0 must stay fixed");
  std::vector<bool> seen(perm.size(), false);
  for (node_id image : perm) {
    RC_REQUIRE(image >= 0 && image < g.node_count());
    RC_REQUIRE_MSG(!seen[static_cast<std::size_t>(image)],
                   "perm must be a bijection");
    seen[static_cast<std::size_t>(image)] = true;
  }
  graph result = g.is_directed() ? graph::directed(g.node_count())
                                 : graph::undirected(g.node_count());
  for (node_id u = 0; u < g.node_count(); ++u) {
    for (node_id v : g.out_neighbors(u)) {
      if (!g.is_directed() && v < u) continue;
      result.add_edge_unchecked(perm[static_cast<std::size_t>(u)],
                                perm[static_cast<std::size_t>(v)]);
    }
  }
  result.finalize();
  return result;
}

graph permute_labels(const graph& g, rng& gen) {
  std::vector<node_id> perm(static_cast<std::size_t>(g.node_count()));
  std::iota(perm.begin(), perm.end(), 0);
  // Fisher–Yates over indices 1…n−1 (the source stays node 0).
  for (std::size_t i = perm.size() - 1; i >= 2; --i) {
    const std::size_t j = 1 + gen.below(i);  // j ∈ [1, i]
    std::swap(perm[i], perm[j]);
    if (i == 2) break;
  }
  return permute_labels(g, perm);
}

}  // namespace radiocast
