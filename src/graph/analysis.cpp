#include "graph/analysis.h"

#include <algorithm>
#include <queue>

namespace radiocast {

std::vector<int> bfs_distances(const graph& g, node_id source) {
  RC_REQUIRE(source >= 0 && source < g.node_count());
  std::vector<int> dist(static_cast<std::size_t>(g.node_count()), -1);
  std::queue<node_id> frontier;
  dist[static_cast<std::size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const node_id u = frontier.front();
    frontier.pop();
    for (node_id v : g.out_neighbors(u)) {
      auto& d = dist[static_cast<std::size_t>(v)];
      if (d == -1) {
        d = dist[static_cast<std::size_t>(u)] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

int radius_from(const graph& g, node_id source) {
  const auto dist = bfs_distances(g, source);
  int radius = 0;
  for (std::size_t v = 0; v < dist.size(); ++v) {
    RC_REQUIRE_MSG(dist[v] >= 0, "node " + std::to_string(v) +
                                     " unreachable from source");
    radius = std::max(radius, dist[v]);
  }
  return radius;
}

std::vector<std::vector<node_id>> bfs_layers(const graph& g, node_id source) {
  const auto dist = bfs_distances(g, source);
  int radius = 0;
  for (std::size_t v = 0; v < dist.size(); ++v) {
    RC_REQUIRE_MSG(dist[v] >= 0, "node " + std::to_string(v) +
                                     " unreachable from source");
    radius = std::max(radius, dist[v]);
  }
  std::vector<std::vector<node_id>> layers(
      static_cast<std::size_t>(radius) + 1);
  for (std::size_t v = 0; v < dist.size(); ++v) {
    layers[static_cast<std::size_t>(dist[v])].push_back(
        static_cast<node_id>(v));
  }
  return layers;
}

bool all_reachable(const graph& g, node_id source) {
  const auto dist = bfs_distances(g, source);
  return std::all_of(dist.begin(), dist.end(), [](int d) { return d >= 0; });
}

bool is_connected(const graph& g) {
  RC_REQUIRE_MSG(!g.is_directed(), "is_connected expects an undirected graph");
  return all_reachable(g, 0);
}

node_id max_degree(const graph& g) {
  node_id best = 0;
  for (node_id v = 0; v < g.node_count(); ++v) {
    best = std::max(best, g.out_degree(v));
  }
  return best;
}

bool is_complete_layered(const graph& g) {
  RC_REQUIRE(!g.is_directed());
  if (!is_connected(g)) return false;
  const auto dist = bfs_distances(g, 0);
  std::vector<std::size_t> layer_size;
  for (int d : dist) {
    const auto ud = static_cast<std::size_t>(d);
    if (ud >= layer_size.size()) layer_size.resize(ud + 1, 0);
    ++layer_size[ud];
  }
  // Every node's degree must equal |previous layer| + |next layer|, and all
  // edges must join consecutive layers.
  for (node_id u = 0; u < g.node_count(); ++u) {
    const auto du = static_cast<std::size_t>(dist[static_cast<std::size_t>(u)]);
    std::size_t expected = (du > 0 ? layer_size[du - 1] : 0) +
                           (du + 1 < layer_size.size() ? layer_size[du + 1]
                                                       : 0);
    if (static_cast<std::size_t>(g.out_degree(u)) != expected) return false;
    for (node_id v : g.out_neighbors(u)) {
      const int dv = dist[static_cast<std::size_t>(v)];
      if (std::abs(dv - static_cast<int>(du)) != 1) return false;
    }
  }
  return true;
}

}  // namespace radiocast
