// Umbrella header: the whole radiocast public API in one include.
//
//   #include "radiocast.h"
//
// Fine-grained headers remain available for compile-time-conscious users;
// this header exists for examples, experiments, and quick starts.
#pragma once

#include "adversary/jamming.h"            // IWYU pragma: export
#include "adversary/lower_bound_builder.h"  // IWYU pragma: export
#include "adversary/selective_family.h"   // IWYU pragma: export
#include "core/complete_layered.h"        // IWYU pragma: export
#include "core/decay.h"                   // IWYU pragma: export
#include "core/dfs_known.h"               // IWYU pragma: export
#include "core/echo.h"                    // IWYU pragma: export
#include "core/interleaved.h"             // IWYU pragma: export
#include "core/kp_randomized.h"           // IWYU pragma: export
#include "core/round_robin.h"             // IWYU pragma: export
#include "core/runner.h"                  // IWYU pragma: export
#include "core/select_and_send.h"         // IWYU pragma: export
#include "core/selective_broadcast.h"     // IWYU pragma: export
#include "core/universal_sequence.h"      // IWYU pragma: export
#include "fault/churn.h"                  // IWYU pragma: export
#include "fault/crash.h"                  // IWYU pragma: export
#include "fault/fault_model.h"            // IWYU pragma: export
#include "fault/jammer.h"                 // IWYU pragma: export
#include "fault/loss.h"                   // IWYU pragma: export
#include "graph/analysis.h"               // IWYU pragma: export
#include "graph/generators.h"             // IWYU pragma: export
#include "graph/graph.h"                  // IWYU pragma: export
#include "sim/message.h"                  // IWYU pragma: export
#include "sim/protocol.h"                 // IWYU pragma: export
#include "sim/simulator.h"                // IWYU pragma: export
#include "sim/trace.h"                    // IWYU pragma: export
#include "util/assert.h"                  // IWYU pragma: export
#include "util/cli.h"                     // IWYU pragma: export
#include "util/fit.h"                     // IWYU pragma: export
#include "util/math.h"                    // IWYU pragma: export
#include "util/rng.h"                     // IWYU pragma: export
#include "util/stats.h"                   // IWYU pragma: export
#include "util/table.h"                   // IWYU pragma: export
