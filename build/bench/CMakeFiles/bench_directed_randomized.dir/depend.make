# Empty dependencies file for bench_directed_randomized.
# This may be replaced when dependencies are built.
