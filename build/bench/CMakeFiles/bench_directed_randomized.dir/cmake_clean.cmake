file(REMOVE_RECURSE
  "CMakeFiles/bench_directed_randomized.dir/bench_directed_randomized.cpp.o"
  "CMakeFiles/bench_directed_randomized.dir/bench_directed_randomized.cpp.o.d"
  "bench_directed_randomized"
  "bench_directed_randomized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_directed_randomized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
