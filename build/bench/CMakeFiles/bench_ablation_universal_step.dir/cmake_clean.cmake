file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_universal_step.dir/bench_ablation_universal_step.cpp.o"
  "CMakeFiles/bench_ablation_universal_step.dir/bench_ablation_universal_step.cpp.o.d"
  "bench_ablation_universal_step"
  "bench_ablation_universal_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_universal_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
