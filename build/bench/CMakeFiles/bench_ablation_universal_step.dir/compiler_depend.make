# Empty compiler generated dependencies file for bench_ablation_universal_step.
# This may be replaced when dependencies are built.
