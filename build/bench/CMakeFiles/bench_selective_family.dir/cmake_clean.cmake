file(REMOVE_RECURSE
  "CMakeFiles/bench_selective_family.dir/bench_selective_family.cpp.o"
  "CMakeFiles/bench_selective_family.dir/bench_selective_family.cpp.o.d"
  "bench_selective_family"
  "bench_selective_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selective_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
