# Empty compiler generated dependencies file for bench_selective_family.
# This may be replaced when dependencies are built.
