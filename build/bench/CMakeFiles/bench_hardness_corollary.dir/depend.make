# Empty dependencies file for bench_hardness_corollary.
# This may be replaced when dependencies are built.
