file(REMOVE_RECURSE
  "CMakeFiles/bench_hardness_corollary.dir/bench_hardness_corollary.cpp.o"
  "CMakeFiles/bench_hardness_corollary.dir/bench_hardness_corollary.cpp.o.d"
  "bench_hardness_corollary"
  "bench_hardness_corollary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hardness_corollary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
