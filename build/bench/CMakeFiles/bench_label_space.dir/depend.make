# Empty dependencies file for bench_label_space.
# This may be replaced when dependencies are built.
