file(REMOVE_RECURSE
  "CMakeFiles/bench_label_space.dir/bench_label_space.cpp.o"
  "CMakeFiles/bench_label_space.dir/bench_label_space.cpp.o.d"
  "bench_label_space"
  "bench_label_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_label_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
