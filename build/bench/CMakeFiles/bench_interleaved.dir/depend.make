# Empty dependencies file for bench_interleaved.
# This may be replaced when dependencies are built.
