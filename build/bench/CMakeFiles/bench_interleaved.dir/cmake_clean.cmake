file(REMOVE_RECURSE
  "CMakeFiles/bench_interleaved.dir/bench_interleaved.cpp.o"
  "CMakeFiles/bench_interleaved.dir/bench_interleaved.cpp.o.d"
  "bench_interleaved"
  "bench_interleaved.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interleaved.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
