file(REMOVE_RECURSE
  "CMakeFiles/bench_lower_bound_adversary.dir/bench_lower_bound_adversary.cpp.o"
  "CMakeFiles/bench_lower_bound_adversary.dir/bench_lower_bound_adversary.cpp.o.d"
  "bench_lower_bound_adversary"
  "bench_lower_bound_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lower_bound_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
