# Empty dependencies file for bench_lower_bound_adversary.
# This may be replaced when dependencies are built.
