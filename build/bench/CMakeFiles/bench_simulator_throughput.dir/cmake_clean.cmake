file(REMOVE_RECURSE
  "CMakeFiles/bench_simulator_throughput.dir/bench_simulator_throughput.cpp.o"
  "CMakeFiles/bench_simulator_throughput.dir/bench_simulator_throughput.cpp.o.d"
  "bench_simulator_throughput"
  "bench_simulator_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulator_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
