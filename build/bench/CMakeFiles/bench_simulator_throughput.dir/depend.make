# Empty dependencies file for bench_simulator_throughput.
# This may be replaced when dependencies are built.
