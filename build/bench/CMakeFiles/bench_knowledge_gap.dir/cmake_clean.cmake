file(REMOVE_RECURSE
  "CMakeFiles/bench_knowledge_gap.dir/bench_knowledge_gap.cpp.o"
  "CMakeFiles/bench_knowledge_gap.dir/bench_knowledge_gap.cpp.o.d"
  "bench_knowledge_gap"
  "bench_knowledge_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_knowledge_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
