# Empty compiler generated dependencies file for bench_knowledge_gap.
# This may be replaced when dependencies are built.
