file(REMOVE_RECURSE
  "CMakeFiles/bench_randomized_scaling.dir/bench_randomized_scaling.cpp.o"
  "CMakeFiles/bench_randomized_scaling.dir/bench_randomized_scaling.cpp.o.d"
  "bench_randomized_scaling"
  "bench_randomized_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_randomized_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
