file(REMOVE_RECURSE
  "CMakeFiles/bench_universal_sequence.dir/bench_universal_sequence.cpp.o"
  "CMakeFiles/bench_universal_sequence.dir/bench_universal_sequence.cpp.o.d"
  "bench_universal_sequence"
  "bench_universal_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_universal_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
