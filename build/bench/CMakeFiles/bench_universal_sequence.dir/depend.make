# Empty dependencies file for bench_universal_sequence.
# This may be replaced when dependencies are built.
