file(REMOVE_RECURSE
  "CMakeFiles/bench_small_radius.dir/bench_small_radius.cpp.o"
  "CMakeFiles/bench_small_radius.dir/bench_small_radius.cpp.o.d"
  "bench_small_radius"
  "bench_small_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_small_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
