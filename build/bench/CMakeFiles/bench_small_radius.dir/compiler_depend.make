# Empty compiler generated dependencies file for bench_small_radius.
# This may be replaced when dependencies are built.
