file(REMOVE_RECURSE
  "CMakeFiles/bench_randomized_vs_decay.dir/bench_randomized_vs_decay.cpp.o"
  "CMakeFiles/bench_randomized_vs_decay.dir/bench_randomized_vs_decay.cpp.o.d"
  "bench_randomized_vs_decay"
  "bench_randomized_vs_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_randomized_vs_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
