# Empty dependencies file for bench_randomized_vs_decay.
# This may be replaced when dependencies are built.
