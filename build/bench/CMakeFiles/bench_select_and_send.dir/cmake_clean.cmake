file(REMOVE_RECURSE
  "CMakeFiles/bench_select_and_send.dir/bench_select_and_send.cpp.o"
  "CMakeFiles/bench_select_and_send.dir/bench_select_and_send.cpp.o.d"
  "bench_select_and_send"
  "bench_select_and_send.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_select_and_send.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
