# Empty compiler generated dependencies file for bench_select_and_send.
# This may be replaced when dependencies are built.
