file(REMOVE_RECURSE
  "CMakeFiles/bench_complete_layered.dir/bench_complete_layered.cpp.o"
  "CMakeFiles/bench_complete_layered.dir/bench_complete_layered.cpp.o.d"
  "bench_complete_layered"
  "bench_complete_layered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complete_layered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
