# Empty compiler generated dependencies file for bench_complete_layered.
# This may be replaced when dependencies are built.
