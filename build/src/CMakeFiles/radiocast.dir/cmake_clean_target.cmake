file(REMOVE_RECURSE
  "libradiocast.a"
)
