# Empty dependencies file for radiocast.
# This may be replaced when dependencies are built.
