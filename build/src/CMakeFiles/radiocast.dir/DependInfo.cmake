
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/jamming.cpp" "src/CMakeFiles/radiocast.dir/adversary/jamming.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/adversary/jamming.cpp.o.d"
  "/root/repo/src/adversary/lower_bound_builder.cpp" "src/CMakeFiles/radiocast.dir/adversary/lower_bound_builder.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/adversary/lower_bound_builder.cpp.o.d"
  "/root/repo/src/adversary/selective_family.cpp" "src/CMakeFiles/radiocast.dir/adversary/selective_family.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/adversary/selective_family.cpp.o.d"
  "/root/repo/src/core/complete_layered.cpp" "src/CMakeFiles/radiocast.dir/core/complete_layered.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/core/complete_layered.cpp.o.d"
  "/root/repo/src/core/decay.cpp" "src/CMakeFiles/radiocast.dir/core/decay.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/core/decay.cpp.o.d"
  "/root/repo/src/core/dfs_known.cpp" "src/CMakeFiles/radiocast.dir/core/dfs_known.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/core/dfs_known.cpp.o.d"
  "/root/repo/src/core/echo.cpp" "src/CMakeFiles/radiocast.dir/core/echo.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/core/echo.cpp.o.d"
  "/root/repo/src/core/interleaved.cpp" "src/CMakeFiles/radiocast.dir/core/interleaved.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/core/interleaved.cpp.o.d"
  "/root/repo/src/core/kp_randomized.cpp" "src/CMakeFiles/radiocast.dir/core/kp_randomized.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/core/kp_randomized.cpp.o.d"
  "/root/repo/src/core/round_robin.cpp" "src/CMakeFiles/radiocast.dir/core/round_robin.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/core/round_robin.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/CMakeFiles/radiocast.dir/core/runner.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/core/runner.cpp.o.d"
  "/root/repo/src/core/select_and_send.cpp" "src/CMakeFiles/radiocast.dir/core/select_and_send.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/core/select_and_send.cpp.o.d"
  "/root/repo/src/core/selective_broadcast.cpp" "src/CMakeFiles/radiocast.dir/core/selective_broadcast.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/core/selective_broadcast.cpp.o.d"
  "/root/repo/src/core/universal_sequence.cpp" "src/CMakeFiles/radiocast.dir/core/universal_sequence.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/core/universal_sequence.cpp.o.d"
  "/root/repo/src/graph/analysis.cpp" "src/CMakeFiles/radiocast.dir/graph/analysis.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/graph/analysis.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/radiocast.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/radiocast.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/graph/graph.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/radiocast.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/radiocast.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/sim/trace.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/radiocast.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/fit.cpp" "src/CMakeFiles/radiocast.dir/util/fit.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/util/fit.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/radiocast.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/radiocast.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/radiocast.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/radiocast.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
