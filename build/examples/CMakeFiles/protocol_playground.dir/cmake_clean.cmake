file(REMOVE_RECURSE
  "CMakeFiles/protocol_playground.dir/protocol_playground.cpp.o"
  "CMakeFiles/protocol_playground.dir/protocol_playground.cpp.o.d"
  "protocol_playground"
  "protocol_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
