# Empty compiler generated dependencies file for protocol_playground.
# This may be replaced when dependencies are built.
