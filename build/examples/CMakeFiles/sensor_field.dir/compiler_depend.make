# Empty compiler generated dependencies file for sensor_field.
# This may be replaced when dependencies are built.
