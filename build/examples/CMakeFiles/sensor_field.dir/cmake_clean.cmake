file(REMOVE_RECURSE
  "CMakeFiles/sensor_field.dir/sensor_field.cpp.o"
  "CMakeFiles/sensor_field.dir/sensor_field.cpp.o.d"
  "sensor_field"
  "sensor_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
