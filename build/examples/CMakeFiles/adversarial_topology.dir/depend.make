# Empty dependencies file for adversarial_topology.
# This may be replaced when dependencies are built.
