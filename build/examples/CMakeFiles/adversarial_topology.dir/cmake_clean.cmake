file(REMOVE_RECURSE
  "CMakeFiles/adversarial_topology.dir/adversarial_topology.cpp.o"
  "CMakeFiles/adversarial_topology.dir/adversarial_topology.cpp.o.d"
  "adversarial_topology"
  "adversarial_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
