file(REMOVE_RECURSE
  "CMakeFiles/emergency_alert.dir/emergency_alert.cpp.o"
  "CMakeFiles/emergency_alert.dir/emergency_alert.cpp.o.d"
  "emergency_alert"
  "emergency_alert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emergency_alert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
