# Empty compiler generated dependencies file for emergency_alert.
# This may be replaced when dependencies are built.
