# Empty compiler generated dependencies file for randomized_test.
# This may be replaced when dependencies are built.
