file(REMOVE_RECURSE
  "CMakeFiles/randomized_test.dir/randomized_test.cpp.o"
  "CMakeFiles/randomized_test.dir/randomized_test.cpp.o.d"
  "randomized_test"
  "randomized_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
