# Empty compiler generated dependencies file for token_validity_test.
# This may be replaced when dependencies are built.
