file(REMOVE_RECURSE
  "CMakeFiles/token_validity_test.dir/token_validity_test.cpp.o"
  "CMakeFiles/token_validity_test.dir/token_validity_test.cpp.o.d"
  "token_validity_test"
  "token_validity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_validity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
