file(REMOVE_RECURSE
  "CMakeFiles/adversary_test.dir/adversary_test.cpp.o"
  "CMakeFiles/adversary_test.dir/adversary_test.cpp.o.d"
  "adversary_test"
  "adversary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
