# Empty compiler generated dependencies file for adversary_test.
# This may be replaced when dependencies are built.
