# Empty dependencies file for echo_test.
# This may be replaced when dependencies are built.
