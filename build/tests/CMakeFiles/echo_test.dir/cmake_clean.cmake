file(REMOVE_RECURSE
  "CMakeFiles/echo_test.dir/echo_test.cpp.o"
  "CMakeFiles/echo_test.dir/echo_test.cpp.o.d"
  "echo_test"
  "echo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/echo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
