# Empty dependencies file for model_invariants_test.
# This may be replaced when dependencies are built.
