file(REMOVE_RECURSE
  "CMakeFiles/model_invariants_test.dir/model_invariants_test.cpp.o"
  "CMakeFiles/model_invariants_test.dir/model_invariants_test.cpp.o.d"
  "model_invariants_test"
  "model_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
