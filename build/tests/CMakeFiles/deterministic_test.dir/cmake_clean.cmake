file(REMOVE_RECURSE
  "CMakeFiles/deterministic_test.dir/deterministic_test.cpp.o"
  "CMakeFiles/deterministic_test.dir/deterministic_test.cpp.o.d"
  "deterministic_test"
  "deterministic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deterministic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
