# Empty dependencies file for deterministic_test.
# This may be replaced when dependencies are built.
