# Empty dependencies file for protocol_semantics_test.
# This may be replaced when dependencies are built.
