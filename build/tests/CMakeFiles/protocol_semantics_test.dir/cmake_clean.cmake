file(REMOVE_RECURSE
  "CMakeFiles/protocol_semantics_test.dir/protocol_semantics_test.cpp.o"
  "CMakeFiles/protocol_semantics_test.dir/protocol_semantics_test.cpp.o.d"
  "protocol_semantics_test"
  "protocol_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
