# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(echo_test "/root/repo/build/tests/echo_test")
set_tests_properties(echo_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(randomized_test "/root/repo/build/tests/randomized_test")
set_tests_properties(randomized_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(deterministic_test "/root/repo/build/tests/deterministic_test")
set_tests_properties(deterministic_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(adversary_test "/root/repo/build/tests/adversary_test")
set_tests_properties(adversary_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(protocol_semantics_test "/root/repo/build/tests/protocol_semantics_test")
set_tests_properties(protocol_semantics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(model_invariants_test "/root/repo/build/tests/model_invariants_test")
set_tests_properties(model_invariants_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(token_validity_test "/root/repo/build/tests/token_validity_test")
set_tests_properties(token_validity_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(robustness_test "/root/repo/build/tests/robustness_test")
set_tests_properties(robustness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stress_test "/root/repo/build/tests/stress_test")
set_tests_properties(stress_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
